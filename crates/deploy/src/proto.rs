//! The control protocol between `gossipd` workers and the coordinator.
//!
//! Five messages over one TCP connection per worker, each framed
//! `[tag u8][len u32 LE][body]`:
//!
//! 1. worker → coordinator [`Message::Hello`] — "I am worker `index`";
//! 2. coordinator → worker [`Message::Welcome`] — the worker's id slice
//!    plus the full deployment config (as TOML text, so both sides parse
//!    the *same* bytes and compile the same fault timeline);
//! 3. worker → coordinator [`Message::Addrs`] — the worker's hosted node
//!    ids and their home socket addresses (the tracker step), plus the
//!    worker's telemetry scrape endpoint when live metrics are on;
//! 4. coordinator → worker [`Message::Start`] — the merged address table
//!    for the whole cluster plus one wall-clock start epoch (UNIX
//!    microseconds), the start barrier every process anchors its
//!    [`gossip_udp::clock::ClusterClock`] on;
//! 5. worker → coordinator [`Message::Report`] — the finished (or
//!    signal-interrupted, then `degraded`) process report, carrying the
//!    [`gossip_udp::codec`] binary encoding of the hosted nodes' reports
//!    and shard stats.
//!
//! Everything here is plain `std::net::TcpStream` blocking I/O — the
//! coordinator talks to a handful of workers, not thousands.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Upper bound on a frame body. A report for a few thousand nodes is a few
/// MiB; anything beyond this is a corrupt length prefix, not data.
const MAX_FRAME: usize = 64 << 20;

/// A control-protocol error: transport I/O or a malformed frame.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying TCP stream failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as a control message.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "control connection: {e}"),
            ProtoError::Malformed(m) => write!(f, "control protocol: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One control-protocol message (see the [module docs](self) for the
/// handshake order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Worker `index` reporting for duty.
    Hello {
        /// The worker's process index, `0..processes`.
        index: u32,
    },
    /// The coordinator's reply: the worker's assignment.
    Welcome {
        /// First hosted node id (inclusive).
        lo: u32,
        /// Last hosted node id (exclusive).
        hi: u32,
        /// The full deployment file, verbatim — the worker parses it
        /// itself so both sides compile identical plans.
        config_toml: String,
    },
    /// A worker's contribution to the address book.
    Addrs {
        /// `(node id, home socket address)` for every hosted node.
        addrs: Vec<(u32, SocketAddr)>,
        /// The worker's telemetry scrape endpoint, when the deployment
        /// enables live metrics (the coordinator polls it mid-run for the
        /// fleet status line and the merged time series).
        telemetry: Option<SocketAddr>,
    },
    /// The start barrier: full address table plus shared epoch.
    Start {
        /// The cluster-wide start instant as UNIX microseconds; every
        /// process maps it to a local `Instant` and anchors its clock
        /// there, so `Time::ZERO` coincides across processes.
        start_unix_micros: u64,
        /// `table[g]` is node `g`'s home socket address, for the whole
        /// cluster.
        table: Vec<SocketAddr>,
    },
    /// A worker's final (or partial) measurement.
    Report {
        /// Whether the run was cut short (signal, external stop).
        degraded: bool,
        /// Shards that aborted inside this process.
        aborted_shards: u32,
        /// [`gossip_udp::codec::encode_process_reports`] bytes.
        payload: Vec<u8>,
    },
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_addr(out: &mut Vec<u8>, addr: &SocketAddr) {
    put_str(out, &addr.to_string());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            ProtoError::Malformed(format!("frame truncated at byte {}", self.pos))
        })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("length checked")))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ProtoError::Malformed("string is not UTF-8".to_string()))
    }

    fn addr(&mut self) -> Result<SocketAddr, ProtoError> {
        let s = self.string()?;
        s.parse().map_err(|_| ProtoError::Malformed(format!("`{s}` is not a socket address")))
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Malformed(format!(
                "{} trailing bytes after message body",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Hello { .. } => 1,
            Message::Welcome { .. } => 2,
            Message::Addrs { .. } => 3,
            Message::Start { .. } => 4,
            Message::Report { .. } => 5,
        }
    }

    fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello { index } => put_u32(&mut out, *index),
            Message::Welcome { lo, hi, config_toml } => {
                put_u32(&mut out, *lo);
                put_u32(&mut out, *hi);
                put_str(&mut out, config_toml);
            }
            Message::Addrs { addrs, telemetry } => {
                put_u32(&mut out, addrs.len() as u32);
                for (id, addr) in addrs {
                    put_u32(&mut out, *id);
                    put_addr(&mut out, addr);
                }
                match telemetry {
                    Some(addr) => {
                        out.push(1);
                        put_addr(&mut out, addr);
                    }
                    None => out.push(0),
                }
            }
            Message::Start { start_unix_micros, table } => {
                put_u64(&mut out, *start_unix_micros);
                put_u32(&mut out, table.len() as u32);
                for addr in table {
                    put_addr(&mut out, addr);
                }
            }
            Message::Report { degraded, aborted_shards, payload } => {
                out.push(u8::from(*degraded));
                put_u32(&mut out, *aborted_shards);
                put_u32(&mut out, payload.len() as u32);
                out.extend_from_slice(payload);
            }
        }
        out
    }

    fn decode(tag: u8, body: &[u8]) -> Result<Message, ProtoError> {
        let mut cur = Cursor { buf: body, pos: 0 };
        let message = match tag {
            1 => Message::Hello { index: cur.u32()? },
            2 => {
                let lo = cur.u32()?;
                let hi = cur.u32()?;
                let config_toml = cur.string()?;
                Message::Welcome { lo, hi, config_toml }
            }
            3 => {
                let count = cur.u32()? as usize;
                let mut addrs = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let id = cur.u32()?;
                    addrs.push((id, cur.addr()?));
                }
                let telemetry = match cur.take(1)?[0] {
                    0 => None,
                    1 => Some(cur.addr()?),
                    other => {
                        return Err(ProtoError::Malformed(format!(
                            "telemetry presence flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                Message::Addrs { addrs, telemetry }
            }
            4 => {
                let start_unix_micros = cur.u64()?;
                let count = cur.u32()? as usize;
                let mut table = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    table.push(cur.addr()?);
                }
                Message::Start { start_unix_micros, table }
            }
            5 => {
                let degraded = cur.take(1)?[0] != 0;
                let aborted_shards = cur.u32()?;
                let len = cur.u32()? as usize;
                let payload = cur.take(len)?.to_vec();
                Message::Report { degraded, aborted_shards, payload }
            }
            other => return Err(ProtoError::Malformed(format!("unknown message tag {other}"))),
        };
        cur.done()?;
        Ok(message)
    }
}

/// Writes one framed message to `stream` (blocking, flushed).
///
/// # Errors
///
/// Returns [`ProtoError::Io`] if the stream fails mid-write.
pub fn write_message(stream: &mut TcpStream, message: &Message) -> Result<(), ProtoError> {
    let body = message.encode_body();
    let mut frame = Vec::with_capacity(5 + body.len());
    frame.push(message.tag());
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    stream.write_all(&frame)?;
    stream.flush()?;
    Ok(())
}

/// Reads one framed message from `stream` (blocking; honours the stream's
/// read timeout).
///
/// # Errors
///
/// Returns [`ProtoError::Io`] on transport failure or timeout and
/// [`ProtoError::Malformed`] if the bytes do not decode.
pub fn read_message(stream: &mut TcpStream) -> Result<Message, ProtoError> {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header)?;
    let tag = header[0];
    let len = u32::from_le_bytes(header[1..5].try_into().expect("length checked")) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::Malformed(format!("frame of {len} bytes exceeds the cap")));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Message::decode(tag, &body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(message: Message) -> Message {
        let listener = TcpListener::bind("127.0.0.1:0").expect("listener binds");
        let addr = listener.local_addr().expect("addr");
        let sender = std::thread::spawn({
            let message = message.clone();
            move || {
                let mut stream = TcpStream::connect(addr).expect("connects");
                write_message(&mut stream, &message).expect("writes");
            }
        });
        let (mut stream, _) = listener.accept().expect("accepts");
        let got = read_message(&mut stream).expect("reads");
        sender.join().expect("sender");
        got
    }

    #[test]
    fn every_message_roundtrips_over_tcp() {
        let messages = vec![
            Message::Hello { index: 2 },
            Message::Welcome { lo: 32, hi: 64, config_toml: "[cluster]\nn = 96\n".to_string() },
            Message::Addrs {
                addrs: vec![
                    (0, "127.0.0.1:4000".parse().unwrap()),
                    (1, "127.0.0.1:4001".parse().unwrap()),
                ],
                telemetry: None,
            },
            Message::Addrs {
                addrs: vec![(7, "127.0.0.1:4007".parse().unwrap())],
                telemetry: Some("127.0.0.1:9607".parse().unwrap()),
            },
            Message::Start {
                start_unix_micros: 1_700_000_000_000_000,
                table: vec!["127.0.0.1:4000".parse().unwrap(), "10.0.0.2:5000".parse().unwrap()],
            },
            Message::Report { degraded: true, aborted_shards: 1, payload: vec![1, 2, 3, 4] },
        ];
        for message in messages {
            assert_eq!(roundtrip(message.clone()), message);
        }
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        assert!(matches!(Message::decode(9, &[]), Err(ProtoError::Malformed(_))));
        assert!(matches!(Message::decode(1, &[0, 0]), Err(ProtoError::Malformed(_))));
        // Trailing garbage after a valid body is rejected.
        let mut body = Message::Hello { index: 1 }.encode_body();
        body.push(0xFF);
        assert!(matches!(Message::decode(1, &body), Err(ProtoError::Malformed(_))));
        // A non-address string where an address belongs.
        let mut out = Vec::new();
        put_u32(&mut out, 1);
        put_u32(&mut out, 7);
        put_str(&mut out, "not-an-addr");
        assert!(matches!(Message::decode(3, &out), Err(ProtoError::Malformed(_))));
    }
}
