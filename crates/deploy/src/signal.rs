//! SIGINT/SIGTERM as a stop flag.
//!
//! A deployed `gossipd` holds minutes of measurement in memory; an
//! operator's Ctrl-C (or the coordinator's kill escalating to SIGTERM)
//! should flush a partial report marked degraded, not drop it on the
//! floor. The handler does the only async-signal-safe thing possible —
//! set an atomic — and the host's stop-poll loop does the rest.
//!
//! The FFI is the raw `signal(2)` libc symbol, declared by hand like the
//! `sendmmsg` wrapper in `gossip-reactor` (the workspace builds offline,
//! without the `libc` crate). `SIG_DFL` remains in place for everything
//! else, and a *second* SIGINT/SIGTERM still kills the process the
//! default way would — the handler is installed once, then restores
//! nothing, relying on the flag being honoured within one stop-poll
//! interval.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler, read by the host's wait loop.
static STOP: AtomicBool = AtomicBool::new(false);

/// `SIGINT` on every unix.
const SIGINT: i32 = 2;
/// `SIGTERM` on every unix.
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // The only thing that is async-signal-safe here: a relaxed store.
    STOP.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! The one FFI call: registering the handler via `signal(2)`.

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub(super) fn register(signum: i32, handler: extern "C" fn(i32)) {
        // Failure returns SIG_ERR; there is nothing useful to do about it
        // at install time, and the stop flag simply stays manual.
        unsafe {
            signal(signum, handler as usize);
        }
    }
}

/// Installs the SIGINT/SIGTERM handler (idempotent; no-op off unix).
pub fn install() {
    #[cfg(unix)]
    {
        sys::register(SIGINT, on_signal);
        sys::register(SIGTERM, on_signal);
    }
}

/// Whether a stop signal has arrived since [`install`].
pub fn stop_requested() -> bool {
    STOP.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_latches() {
        // The handler itself is exercised by the integration test that
        // SIGTERMs a live gossipd; here we only pin the flag semantics.
        install();
        assert!(!stop_requested() || STOP.load(Ordering::Relaxed));
        on_signal(SIGINT);
        assert!(stop_requested());
        STOP.store(false, Ordering::Relaxed);
    }
}
