//! The `gossip-coord` coordinator: launch the workers, run the barrier,
//! merge the reports.
//!
//! One coordinator process drives a whole deployment from one TOML file:
//! it computes each worker's contiguous id slice, spawns the `gossipd`
//! processes locally (or prints the commands for remote hosts), plays
//! tracker by relaying every worker's socket addresses to every other,
//! broadcasts one wall-clock start epoch so the compiled fault timelines
//! coincide across processes, optionally hard-kills one worker mid-stream
//! (the first cross-host chaos scenario), and finally merges every
//! process's reports into one [`ClusterReport`] via the same
//! [`assemble_report`] the in-process runtimes use — so a 3-process
//! deployment's numbers sit in the same table as a single-process run's.
//!
//! A worker that dies (killed by the chaos scenario, or crashed) simply
//! never delivers its report; its nodes are synthesised as **dark** —
//! fresh players that received nothing — so the merged report shows the
//! victims' darkness *and* the survivors' quality side by side, and the
//! whole report is marked degraded.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use gossip_telemetry::{Registry, TelemetrySeries, TelemetrySnapshot};

use gossip_adversity::WallClockAnchor;
use gossip_core::ProtocolStats;
use gossip_stream::StreamPlayer;
use gossip_types::NodeId;
use gossip_udp::cluster::{assemble_report, ClusterError, ClusterReport};
use gossip_udp::codec;
use gossip_udp::report::{NodeReport, ShardStats};

use crate::config::{DeployConfig, DeployParseError};
use crate::proto::{read_message, write_message, Message, ProtoError};

/// Patience for each worker's Hello and Addrs (binding a slice is fast;
/// remote workers may take a moment to be started by hand).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(120);
/// Slack on top of the scheduled run length before a missing report is
/// declared lost.
const REPORT_SLACK: Duration = Duration::from_secs(120);

/// A coordinator-side failure.
#[derive(Debug)]
pub enum DeployError {
    /// Listener, accept or child-process I/O failed.
    Io(std::io::Error),
    /// The deployment file does not parse.
    Parse(DeployParseError),
    /// A worker violated the control protocol.
    Proto(ProtoError),
    /// A worker's handshake content was inconsistent (wrong index,
    /// foreign node ids, gaps in the address book).
    Protocol(String),
    /// Report assembly failed at the cluster layer.
    Cluster(ClusterError),
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::Io(e) => write!(f, "coordinator i/o: {e}"),
            DeployError::Parse(e) => write!(f, "{e}"),
            DeployError::Proto(e) => write!(f, "{e}"),
            DeployError::Protocol(m) => write!(f, "deployment protocol: {m}"),
            DeployError::Cluster(e) => write!(f, "cluster: {e}"),
        }
    }
}

impl std::error::Error for DeployError {}

impl From<std::io::Error> for DeployError {
    fn from(e: std::io::Error) -> Self {
        DeployError::Io(e)
    }
}

impl From<ProtoError> for DeployError {
    fn from(e: ProtoError) -> Self {
        DeployError::Proto(e)
    }
}

/// How the coordinator runs a deployment.
#[derive(Debug, Clone)]
pub struct CoordOptions {
    /// The deployment file, verbatim (also forwarded to every worker).
    pub config_text: String,
    /// Explicit path to the `gossipd` binary; `None` looks for a sibling
    /// of the current executable (the layout `cargo build` produces).
    pub gossipd: Option<PathBuf>,
    /// `true`: spawn the workers as local child processes. `false`: print
    /// one `gossipd --coord … --index k` command per worker and wait for
    /// them to connect from wherever the operator starts them (the
    /// mid-stream kill needs local children and is rejected otherwise).
    pub spawn_local: bool,
}

/// What happened to one worker process.
#[derive(Debug, Clone, Copy)]
pub struct ProcessOutcome {
    /// The worker's index, `0..processes`.
    pub index: usize,
    /// The id slice `[lo, hi)` the worker hosted.
    pub slice: (u32, u32),
    /// Whether the coordinator hard-killed this worker mid-stream.
    pub killed: bool,
    /// Whether the worker delivered a report at all (a killed or crashed
    /// worker does not; its nodes are synthesised dark).
    pub reported: bool,
    /// Whether the worker's own run was cut short (signal/stop).
    pub degraded: bool,
    /// Shards that aborted inside the worker.
    pub aborted_shards: usize,
}

/// The merged outcome of a deployment: one comparable [`ClusterReport`]
/// plus per-process accounting.
#[derive(Debug)]
pub struct AggregateReport {
    /// The cluster-wide report, assembled by the same
    /// [`assemble_report`] as the in-process runtimes — dark nodes of
    /// dead workers included.
    pub report: ClusterReport,
    /// Per-worker outcomes, in index order.
    pub outcomes: Vec<ProcessOutcome>,
}

impl AggregateReport {
    /// Mean fraction of measured windows (`1..=windows_measured`) each
    /// *receiver* in the id slice `[lo, hi)` could decode. `1.0` for an
    /// empty slice of receivers or when nothing was measured — callers
    /// gate on `windows_measured` separately.
    pub fn completeness_of(&self, lo: u32, hi: u32) -> f64 {
        let last = self.report.windows_measured;
        if last < 1 {
            return 1.0;
        }
        let mut nodes = 0usize;
        let mut sum = 0.0;
        for node in &self.report.nodes {
            let g = node.id.as_u32();
            if g == 0 || g < lo || g >= hi {
                continue;
            }
            let decodable =
                (1..=last).filter(|&w| node.player.window_decodable_at(w).is_some()).count();
            sum += decodable as f64 / last as f64;
            nodes += 1;
        }
        if nodes == 0 {
            1.0
        } else {
            sum / nodes as f64
        }
    }
}

/// Sums the final value of every sample whose family (name without
/// labels) matches — totalling a per-shard metric across one scrape.
fn family_sum(samples: &[(String, f64)], family: &str) -> f64 {
    let prefix = format!("{family}{{");
    samples
        .iter()
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, v)| v)
        .sum()
}

/// Mean of every sample of one family, if any are present.
fn family_mean(samples: &[(String, f64)], family: &str) -> Option<f64> {
    let prefix = format!("{family}{{");
    let values: Vec<f64> = samples
        .iter()
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, v)| *v)
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// The coordinator's fleet monitor: scrapes every worker's telemetry
/// endpoint once per second, folds the per-shard families into `fleet_*`
/// cells, prints a live status line, and accumulates the snapshots that
/// become the merged report's [`TelemetrySeries`].
fn monitor_fleet(endpoints: Vec<SocketAddr>, stop: Arc<AtomicBool>) -> TelemetrySeries {
    let registry = Registry::new();
    let workers_live = registry.gauge(
        "fleet_workers_live",
        "Workers whose scrape endpoint answered the last fleet poll.",
        &[],
    );
    let sent = registry.counter(
        "fleet_datagrams_sent_total",
        "Protocol datagrams sent, summed across every worker's shards.",
        &[],
    );
    let received = registry.counter(
        "fleet_datagrams_received_total",
        "Protocol datagrams received, summed across every worker's shards.",
        &[],
    );
    let shed = registry.counter(
        "fleet_datagrams_shed_total",
        "Datagrams shed by outbox/retry budgets, summed across the fleet.",
        &[],
    );
    let backoffs = registry.counter(
        "fleet_send_backoffs_total",
        "Backoff intervals entered after transient send failures, fleet-wide.",
        &[],
    );
    let completeness = registry.gauge_f64(
        "fleet_completeness_percent",
        "Mean per-shard stream completeness across the fleet.",
        &[],
    );
    let workers = endpoints.len();
    let mut snapshots = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut live = 0usize;
        let mut fold: Vec<(String, f64)> = Vec::new();
        for &addr in &endpoints {
            if let Ok(mut samples) = gossip_telemetry::scrape(addr) {
                live += 1;
                fold.append(&mut samples);
            }
        }
        workers_live.store(live as u64);
        let sent_now = family_sum(&fold, "gossip_shard_datagrams_sent_total");
        let recv_now = family_sum(&fold, "gossip_shard_datagrams_received_total");
        let shed_now = family_sum(&fold, "gossip_shard_datagrams_shed_total");
        let backoffs_now = family_sum(&fold, "gossip_shard_send_backoffs_total");
        let pct = family_mean(&fold, "gossip_shard_completeness_percent");
        sent.store(sent_now as u64);
        received.store(recv_now as u64);
        shed.store(shed_now as u64);
        backoffs.store(backoffs_now as u64);
        completeness.store_f64(pct.unwrap_or(0.0));
        let at_unix_millis =
            SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_millis() as u64);
        snapshots.push(TelemetrySnapshot { at_unix_millis, values: registry.snapshot_values() });
        if live > 0 {
            println!(
                "fleet: {live}/{workers} workers | sent {} | recv {} | shed {} | backoffs {} | completeness {}",
                sent_now as u64,
                recv_now as u64,
                shed_now as u64,
                backoffs_now as u64,
                pct.map_or_else(|| "n/a".to_string(), |p| format!("{p:.1}%")),
            );
        }
        // Sleep in short slices so the monitor stops promptly once the
        // last report is in.
        let mut left = Duration::from_secs(1);
        while !left.is_zero() && !stop.load(Ordering::Relaxed) {
            let slice = left.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            left = left.saturating_sub(slice);
        }
    }
    TelemetrySeries { names: registry.snapshot_names(), snapshots }
}

fn gossipd_path(opts: &CoordOptions) -> Result<PathBuf, DeployError> {
    if let Some(path) = &opts.gossipd {
        return Ok(path.clone());
    }
    let me = std::env::current_exe()?;
    let sibling = me.with_file_name(if cfg!(windows) { "gossipd.exe" } else { "gossipd" });
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(DeployError::Protocol(format!(
            "no gossipd binary next to {}; pass an explicit path",
            me.display()
        )))
    }
}

/// A dark node: the synthesised report of a node whose process died
/// before delivering — a fresh player that received nothing.
fn dark_node(config: &DeployConfig, g: u32) -> NodeReport {
    NodeReport {
        id: NodeId::new(g),
        protocol: ProtocolStats::default(),
        player: StreamPlayer::new(config.cluster.stream),
        sent_bytes: 0,
        sent_msgs: 0,
        shaper_drops: 0,
        recv_msgs: 0,
        decode_errors: 0,
    }
}

/// Runs a whole deployment to completion and merges the reports.
///
/// # Errors
///
/// Returns a [`DeployError`] if the file does not parse, the workers
/// cannot be spawned or contacted, or the handshake is violated. A worker
/// dying *mid-run* is not an error — that is a measurement (dark nodes,
/// degraded report).
pub fn run_coordinator(opts: &CoordOptions) -> Result<AggregateReport, DeployError> {
    let config = DeployConfig::from_toml_str(&opts.config_text).map_err(DeployError::Parse)?;
    let total_n = config.cluster.compiled_adversity().total_n;
    let processes = config.processes;
    if config.kill_process.is_some() && !opts.spawn_local {
        return Err(DeployError::Protocol(
            "kill_process needs locally spawned workers".to_string(),
        ));
    }

    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let coord_addr = listener.local_addr()?;

    // Launch the fleet — or tell the operator how to.
    let children: Arc<Mutex<Vec<Option<Child>>>> = Arc::new(Mutex::new(Vec::new()));
    if opts.spawn_local {
        let binary = gossipd_path(opts)?;
        let mut spawned = children.lock().expect("children lock");
        for k in 0..processes {
            let child = Command::new(&binary)
                .arg("--coord")
                .arg(coord_addr.to_string())
                .arg("--index")
                .arg(k.to_string())
                .stdin(Stdio::null())
                .spawn()?;
            spawned.push(Some(child));
        }
    } else {
        for k in 0..processes {
            println!("start worker {k}:  gossipd --coord {coord_addr} --index {k}");
        }
    }

    // Accept one control connection per worker; Hello tells us which is
    // which regardless of connect order.
    let mut control: Vec<Option<TcpStream>> = (0..processes).map(|_| None).collect();
    for _ in 0..processes {
        let (mut stream, _) = listener.accept()?;
        stream.set_read_timeout(Some(HANDSHAKE_TIMEOUT))?;
        stream.set_nodelay(true).ok();
        match read_message(&mut stream)? {
            Message::Hello { index } => {
                let slot = control.get_mut(index as usize).ok_or_else(|| {
                    DeployError::Protocol(format!(
                        "worker index {index} out of range ({processes} processes)"
                    ))
                })?;
                if slot.is_some() {
                    return Err(DeployError::Protocol(format!(
                        "two workers claimed index {index}"
                    )));
                }
                *slot = Some(stream);
            }
            other => return Err(DeployError::Protocol(format!("expected Hello, got {other:?}"))),
        }
    }
    let mut control: Vec<TcpStream> =
        control.into_iter().map(|s| s.expect("every index claimed")).collect();

    // Hand out assignments; collect the address book.
    for (k, stream) in control.iter_mut().enumerate() {
        let (lo, hi) = config.slice_of(k, total_n);
        write_message(stream, &Message::Welcome { lo, hi, config_toml: opts.config_text.clone() })?;
    }
    let mut table: Vec<Option<SocketAddr>> = vec![None; total_n];
    let mut scrape_endpoints: Vec<SocketAddr> = Vec::new();
    for (k, stream) in control.iter_mut().enumerate() {
        let (lo, hi) = config.slice_of(k, total_n);
        match read_message(stream)? {
            Message::Addrs { addrs, telemetry } => {
                if let Some(addr) = telemetry {
                    scrape_endpoints.push(addr);
                }
                for (g, addr) in addrs {
                    if g < lo || g >= hi {
                        return Err(DeployError::Protocol(format!(
                            "worker {k} published node {g} outside its slice [{lo}, {hi})"
                        )));
                    }
                    table[g as usize] = Some(addr);
                }
            }
            other => return Err(DeployError::Protocol(format!("expected Addrs, got {other:?}"))),
        }
    }
    let table: Vec<SocketAddr> = table
        .into_iter()
        .enumerate()
        .map(|(g, a)| a.ok_or_else(|| DeployError::Protocol(format!("no address for node {g}"))))
        .collect::<Result<_, _>>()?;

    // The start barrier: one wall-clock epoch for everyone.
    let anchor = WallClockAnchor::starting_in(config.start_delay);
    for stream in control.iter_mut() {
        write_message(
            stream,
            &Message::Start { start_unix_micros: anchor.start_unix_micros, table: table.clone() },
        )?;
    }

    // Live observability: poll every published scrape endpoint at 1 Hz
    // for the duration of the run. A worker whose endpoint stops
    // answering (killed, crashed) simply drops out of `fleet_workers_live`
    // — visible in the time series well before its report goes missing.
    let fleet_stop = Arc::new(AtomicBool::new(false));
    let fleet_handle = if scrape_endpoints.is_empty() {
        None
    } else {
        let stop = Arc::clone(&fleet_stop);
        Some(std::thread::spawn(move || monitor_fleet(scrape_endpoints, stop)))
    };

    // Chaos: hard-kill one worker mid-stream. SIGKILL, not SIGTERM — the
    // point is a process that vanishes without flushing anything.
    let mut kill_handle = None;
    if let Some(victim) = config.kill_process {
        let delay = anchor.until_start() + config.kill_at;
        let children = Arc::clone(&children);
        kill_handle = Some(std::thread::spawn(move || {
            std::thread::sleep(delay);
            if let Some(Some(child)) = children.lock().expect("children lock").get_mut(victim) {
                child.kill().ok();
            }
        }));
    }

    // Collect the reports; a dead worker yields dark nodes, not an error.
    let run_len = std::time::Duration::from_secs_f64(
        (config.cluster.stream_duration + config.cluster.drain_duration).as_secs_f64(),
    );
    let report_timeout = anchor.until_start() + run_len + REPORT_SLACK;
    let mut outcomes = Vec::with_capacity(processes);
    let mut nodes: Vec<NodeReport> = Vec::with_capacity(total_n);
    let mut shard_stats: Vec<ShardStats> = Vec::new();
    let mut aborted_total = 0usize;
    let mut per_process: HashMap<usize, (bool, bool, usize)> = HashMap::new();
    for (k, stream) in control.iter_mut().enumerate() {
        let (lo, hi) = config.slice_of(k, total_n);
        stream.set_read_timeout(Some(report_timeout))?;
        let received = match read_message(stream) {
            Ok(Message::Report { degraded, aborted_shards, payload }) => {
                match codec::decode_process_reports(&payload, &config.cluster.stream) {
                    Ok((mut proc_nodes, proc_stats)) => {
                        proc_nodes.retain(|n| {
                            let g = n.id.as_u32();
                            g >= lo && g < hi
                        });
                        nodes.append(&mut proc_nodes);
                        shard_stats.extend(proc_stats);
                        aborted_total += aborted_shards as usize;
                        per_process.insert(k, (true, degraded, aborted_shards as usize));
                        true
                    }
                    Err(e) => {
                        eprintln!("worker {k}: undecodable report ({e}); treating as dark");
                        false
                    }
                }
            }
            Ok(other) => {
                eprintln!("worker {k}: expected Report, got {other:?}; treating as dark");
                false
            }
            // Connection reset / EOF / timeout: the worker is gone — the
            // kill scenario lands here by design.
            Err(_) => false,
        };
        if !received {
            per_process.insert(k, (false, true, 0));
        }
    }

    // Synthesise dark nodes for every id nobody reported (dead workers,
    // aborted shards).
    let mut have: Vec<bool> = vec![false; total_n];
    for node in &nodes {
        have[node.id.index()] = true;
    }
    for (g, reported) in have.iter().enumerate() {
        if !reported {
            nodes.push(dark_node(&config, g as u32));
        }
    }

    fleet_stop.store(true, Ordering::Relaxed);
    let fleet_series = fleet_handle.and_then(|h| h.join().ok());

    let mut report = assemble_report(&config.cluster, nodes);
    report.shard_stats = shard_stats;
    report.aborted_shards = aborted_total;
    report.telemetry = fleet_series;
    for k in 0..processes {
        let &(reported, degraded, aborted) = per_process.get(&k).expect("every worker recorded");
        let killed = config.kill_process == Some(k);
        report.degraded |= !reported || degraded || killed;
        outcomes.push(ProcessOutcome {
            index: k,
            slice: config.slice_of(k, total_n),
            killed,
            reported,
            degraded,
            aborted_shards: aborted,
        });
    }

    if let Some(handle) = kill_handle {
        handle.join().ok();
    }
    for child in children.lock().expect("children lock").iter_mut().flatten() {
        child.wait().ok();
    }

    Ok(AggregateReport { report, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_commands_mode_rejects_the_kill_scenario() {
        let config_text = "[cluster]\nn = 8\n[deploy]\nprocesses = 2\nkill_process = 1\n";
        let opts = CoordOptions {
            config_text: config_text.to_string(),
            gossipd: None,
            spawn_local: false,
        };
        let err = run_coordinator(&opts).expect_err("must be rejected");
        assert!(matches!(err, DeployError::Protocol(_)));
    }

    #[test]
    fn a_broken_config_is_a_parse_error() {
        let opts = CoordOptions {
            config_text: "[cluster]\n".to_string(),
            gossipd: None,
            spawn_local: false,
        };
        assert!(matches!(run_coordinator(&opts), Err(DeployError::Parse(_))));
    }
}
