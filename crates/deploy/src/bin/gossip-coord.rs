//! `gossip-coord` — drive a whole deployment from one TOML file.
//!
//! Usage: `gossip-coord --config FILE [--gossipd PATH] [--print-commands]`
//!
//! Spawns the `gossipd` workers locally (default) or prints one command
//! per worker for the operator to run elsewhere (`--print-commands`),
//! coordinates discovery and the start barrier, optionally hard-kills one
//! worker mid-stream (the `kill_process` config key), and prints the
//! merged cluster report.

use std::path::PathBuf;
use std::process::ExitCode;

use gossip_deploy::CoordOptions;
use gossip_types::Duration;

fn usage() -> ExitCode {
    eprintln!("usage: gossip-coord --config FILE [--gossipd PATH] [--print-commands]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config_path: Option<PathBuf> = None;
    let mut gossipd: Option<PathBuf> = None;
    let mut spawn_local = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--config" => {
                let Some(value) = args.next() else { return usage() };
                config_path = Some(PathBuf::from(value));
            }
            "--gossipd" => {
                let Some(value) = args.next() else { return usage() };
                gossipd = Some(PathBuf::from(value));
            }
            "--print-commands" => spawn_local = false,
            "--help" | "-h" => {
                println!("usage: gossip-coord --config FILE [--gossipd PATH] [--print-commands]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gossip-coord: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let Some(config_path) = config_path else { return usage() };
    let config_text = match std::fs::read_to_string(&config_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("gossip-coord: cannot read {}: {e}", config_path.display());
            return ExitCode::FAILURE;
        }
    };

    let aggregate =
        match gossip_deploy::run_coordinator(&CoordOptions { config_text, gossipd, spawn_local }) {
            Ok(aggregate) => aggregate,
            Err(e) => {
                eprintln!("gossip-coord: {e}");
                return ExitCode::FAILURE;
            }
        };

    let report = &aggregate.report;
    println!("== merged cluster report ==");
    println!(
        "nodes: {} ({} receivers), windows measured: {}, verified: {}",
        report.nodes.len(),
        report.receivers(),
        report.windows_measured,
        report.windows_verified,
    );
    println!(
        "average quality: {:.1}% | degraded: {} | aborted shards: {}",
        report.quality.average_quality_percent(Duration::MAX),
        report.degraded,
        report.aborted_shards,
    );
    for outcome in &aggregate.outcomes {
        let (lo, hi) = outcome.slice;
        println!(
            "worker {}: nodes [{lo}, {hi})  completeness {:.1}%  {}{}",
            outcome.index,
            100.0 * aggregate.completeness_of(lo, hi),
            if outcome.reported {
                if outcome.degraded {
                    "reported (degraded)"
                } else {
                    "reported"
                }
            } else {
                "no report (dark)"
            },
            if outcome.killed { ", killed by scenario" } else { "" },
        );
    }
    ExitCode::SUCCESS
}
