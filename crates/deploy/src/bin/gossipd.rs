//! `gossipd` — one worker process of a deployed gossip cluster.
//!
//! Usage: `gossipd --coord HOST:PORT --index K [--telemetry-json PATH]`
//!
//! Connects to the coordinator, learns its id slice and the deployment
//! config, hosts the slice on the reactor runtime and ships its report
//! back. SIGINT/SIGTERM cut the run short and flush a partial report
//! marked degraded. `--telemetry-json PATH` makes the worker rewrite
//! `PATH` with its live metric snapshot series as JSON throughout the run
//! (and enables telemetry even without a `[telemetry]` config section).

use std::net::SocketAddr;
use std::process::ExitCode;

const USAGE: &str = "usage: gossipd --coord HOST:PORT --index K [--telemetry-json PATH]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut coord: Option<SocketAddr> = None;
    let mut index: Option<u32> = None;
    let mut telemetry_json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--coord" => {
                let Some(value) = args.next() else { return usage() };
                match value.parse() {
                    Ok(addr) => coord = Some(addr),
                    Err(_) => {
                        eprintln!("gossipd: `{value}` is not a socket address");
                        return ExitCode::from(2);
                    }
                }
            }
            "--index" => {
                let Some(value) = args.next() else { return usage() };
                match value.parse() {
                    Ok(k) => index = Some(k),
                    Err(_) => {
                        eprintln!("gossipd: `{value}` is not a worker index");
                        return ExitCode::from(2);
                    }
                }
            }
            "--telemetry-json" => {
                let Some(value) = args.next() else { return usage() };
                telemetry_json = Some(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gossipd: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(coord), Some(index)) = (coord, index) else { return usage() };

    match gossip_deploy::run_worker(coord, index, telemetry_json) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gossipd[{index}]: {e}");
            ExitCode::FAILURE
        }
    }
}
