//! `gossipd` — one worker process of a deployed gossip cluster.
//!
//! Usage: `gossipd --coord HOST:PORT --index K`
//!
//! Connects to the coordinator, learns its id slice and the deployment
//! config, hosts the slice on the reactor runtime and ships its report
//! back. SIGINT/SIGTERM cut the run short and flush a partial report
//! marked degraded.

use std::net::SocketAddr;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: gossipd --coord HOST:PORT --index K");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut coord: Option<SocketAddr> = None;
    let mut index: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--coord" => {
                let Some(value) = args.next() else { return usage() };
                match value.parse() {
                    Ok(addr) => coord = Some(addr),
                    Err(_) => {
                        eprintln!("gossipd: `{value}` is not a socket address");
                        return ExitCode::from(2);
                    }
                }
            }
            "--index" => {
                let Some(value) = args.next() else { return usage() };
                match value.parse() {
                    Ok(k) => index = Some(k),
                    Err(_) => {
                        eprintln!("gossipd: `{value}` is not a worker index");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("usage: gossipd --coord HOST:PORT --index K");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("gossipd: unknown argument `{other}`");
                return usage();
            }
        }
    }
    let (Some(coord), Some(index)) = (coord, index) else { return usage() };

    match gossip_deploy::run_worker(coord, index) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gossipd[{index}]: {e}");
            ExitCode::FAILURE
        }
    }
}
