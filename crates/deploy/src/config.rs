//! The deployment config file: one TOML describing cluster, processes and
//! adversity.
//!
//! The build is fully offline, so this module extends the hand-rolled
//! TOML-subset approach of [`gossip_adversity::toml`]: the `[cluster]` and
//! `[deploy]` sections are parsed here (numbers plus one quoted `bind`
//! string), and every *other* line is handed verbatim to
//! [`AdversitySpec::from_toml_str`] — so the full adversity grammar
//! (churn, flash crowds, partitions, chaos, …) works unchanged inside a
//! deployment file, and one file drives the whole cluster.
//!
//! # File format
//!
//! ```toml
//! [cluster]
//! n = 96                 # total nodes including the source (node 0)
//! fanout = 6
//! period_ms = 100
//! rate_kbps = 200        # stream bit-rate
//! payload_bytes = 500
//! data_packets = 10      # FEC window geometry
//! parity_packets = 3
//! upload_cap_kbps = 2000 # 0 = uncapped (source is always uncapped)
//! stream_secs = 5
//! drain_secs = 3
//! seed = 1
//! inject_loss = 0.0
//! cyclon_degree = 0      # >0: flash-crowd joiners bootstrap via Cyclon
//!
//! [deploy]
//! processes = 3
//! shards_per_process = 1 # 0 = auto (per-core)
//! sockets_per_shard = 2
//! start_delay_ms = 500   # start barrier: epoch this far in the future
//! bind = "127.0.0.1"     # interface the reactor sockets bind
//! kill_process = 2       # optional: hard-kill this worker mid-stream...
//! kill_at_secs = 2.0     # ...this far into the stream
//!
//! [telemetry]            # optional: live metrics on every worker
//! port_base = 9600       # worker k scrapes on port_base + k (0: ephemeral)
//! sample_ms = 250        # snapshot cadence
//!
//! [catastrophic]         # any gossip-adversity section rides along
//! at_secs = 3.0
//! fraction = 0.2
//! ```

use std::net::Ipv4Addr;

use gossip_adversity::AdversitySpec;
use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::{ClusterConfig, JoinerBootstrap};

/// A deployment-file parse or validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeployParseError(pub String);

impl std::fmt::Display for DeployParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deploy config: {}", self.0)
    }
}

impl std::error::Error for DeployParseError {}

/// Everything one TOML file says about a deployment: the cluster workload
/// (shared by every process) plus the process topology.
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// The runtime-independent cluster description, including the parsed
    /// adversity spec. Identical in every process — workers re-derive the
    /// compiled fault timeline from it.
    pub cluster: ClusterConfig,
    /// Number of `gossipd` processes the cluster splits across.
    pub processes: usize,
    /// Reactor shards per process (`None`: per-core auto).
    pub shards_per_process: Option<usize>,
    /// Sockets per reactor shard.
    pub sockets_per_shard: usize,
    /// How far in the future the coordinator sets the shared start epoch:
    /// long enough for every process to receive it before it fires.
    pub start_delay: std::time::Duration,
    /// Interface the reactor pool sockets bind (loopback for single-host).
    pub bind: Ipv4Addr,
    /// Chaos: hard-kill this worker process (by index) mid-stream.
    pub kill_process: Option<usize>,
    /// When the kill fires, measured from the shared start epoch.
    pub kill_at: std::time::Duration,
    /// Live telemetry for every worker (the `[telemetry]` section; `None`
    /// when the file has no such section).
    pub telemetry: Option<TelemetrySection>,
}

/// The `[telemetry]` section of a deployment file: every worker serves a
/// scrape endpoint, and the coordinator polls them into a fleet view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySection {
    /// Worker `k` binds its scrape endpoint on `port_base + k`
    /// (`0`: each worker takes an ephemeral port and reports it to the
    /// coordinator in its address exchange).
    pub port_base: u16,
    /// Snapshot cadence in milliseconds.
    pub sample_ms: u64,
}

impl TelemetrySection {
    /// The scrape config of worker `k` under this section.
    pub fn config_for_worker(&self, k: usize) -> gossip_telemetry::TelemetryConfig {
        let port = if self.port_base == 0 { 0 } else { self.port_base.saturating_add(k as u16) };
        gossip_telemetry::TelemetryConfig {
            sample_period: std::time::Duration::from_millis(self.sample_ms),
            ..gossip_telemetry::TelemetryConfig::on_port(port)
        }
    }
}

impl DeployConfig {
    /// Parses a deployment file (see the [module docs](self) for the
    /// format).
    ///
    /// # Errors
    ///
    /// Returns a [`DeployParseError`] naming the offending line, missing
    /// key, or invalid combination.
    pub fn from_toml_str(input: &str) -> Result<Self, DeployParseError> {
        #[derive(PartialEq)]
        enum At {
            Cluster,
            Deploy,
            Telemetry,
            Elsewhere,
        }
        let mut at = At::Elsewhere;
        let mut seen_cluster = false;
        let mut seen_deploy = false;
        let mut seen_telemetry = false;
        let mut numbers: Vec<(At2, String, f64)> = Vec::new();
        let mut bind: Option<Ipv4Addr> = None;
        let mut rest = String::new();

        #[derive(Clone, Copy, PartialEq)]
        enum At2 {
            Cluster,
            Deploy,
            Telemetry,
        }

        for (lineno, raw) in input.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| DeployParseError(format!("line {}: {msg}", lineno + 1));
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match header.trim() {
                    "cluster" => {
                        if seen_cluster {
                            return Err(err("duplicate [cluster] section".to_string()));
                        }
                        seen_cluster = true;
                        at = At::Cluster;
                    }
                    "deploy" => {
                        if seen_deploy {
                            return Err(err("duplicate [deploy] section".to_string()));
                        }
                        seen_deploy = true;
                        at = At::Deploy;
                    }
                    "telemetry" => {
                        if seen_telemetry {
                            return Err(err("duplicate [telemetry] section".to_string()));
                        }
                        seen_telemetry = true;
                        at = At::Telemetry;
                    }
                    _ => {
                        at = At::Elsewhere;
                        rest.push_str(line);
                        rest.push('\n');
                    }
                }
                continue;
            }
            match at {
                At::Elsewhere => {
                    rest.push_str(line);
                    rest.push('\n');
                }
                At::Cluster | At::Deploy | At::Telemetry => {
                    let Some((key, value)) = line.split_once('=') else {
                        return Err(err(format!("cannot parse `{line}`")));
                    };
                    let (key, value) = (key.trim(), value.trim());
                    if key == "bind" {
                        if at != At::Deploy {
                            return Err(err("`bind` belongs in [deploy]".to_string()));
                        }
                        let quoted = value
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .ok_or_else(|| err("`bind` must be a quoted string".to_string()))?;
                        bind = Some(
                            quoted
                                .parse()
                                .map_err(|_| err(format!("`{quoted}` is not an IPv4 address")))?,
                        );
                        continue;
                    }
                    let value: f64 =
                        value.parse().map_err(|_| err(format!("`{value}` is not a number")))?;
                    let section = match at {
                        At::Cluster => At2::Cluster,
                        At::Deploy => At2::Deploy,
                        At::Telemetry => At2::Telemetry,
                        At::Elsewhere => unreachable!("handled above"),
                    };
                    numbers.push((section, key.to_string(), value));
                }
            }
        }
        if !seen_cluster {
            return Err(DeployParseError("missing [cluster] section".to_string()));
        }
        if !seen_deploy {
            return Err(DeployParseError("missing [deploy] section".to_string()));
        }

        let get = |section: At2, key: &str| -> Option<f64> {
            numbers.iter().find(|(s, k, _)| *s == section && k == key).map(|&(_, _, v)| v)
        };
        for (section, key, _) in &numbers {
            let known: &[&str] = match section {
                At2::Cluster => &[
                    "n",
                    "fanout",
                    "period_ms",
                    "rate_kbps",
                    "payload_bytes",
                    "data_packets",
                    "parity_packets",
                    "upload_cap_kbps",
                    "stream_secs",
                    "drain_secs",
                    "seed",
                    "inject_loss",
                    "cyclon_degree",
                ],
                At2::Deploy => &[
                    "processes",
                    "shards_per_process",
                    "sockets_per_shard",
                    "start_delay_ms",
                    "kill_process",
                    "kill_at_secs",
                ],
                At2::Telemetry => &["port_base", "sample_ms"],
            };
            if !known.contains(&key.as_str()) {
                let name = match section {
                    At2::Cluster => "cluster",
                    At2::Deploy => "deploy",
                    At2::Telemetry => "telemetry",
                };
                return Err(DeployParseError(format!("unknown key `{key}` in [{name}]")));
            }
        }
        let integer = |v: f64, what: &str| -> Result<usize, DeployParseError> {
            if v >= 0.0 && v.fract() == 0.0 && v.is_finite() {
                Ok(v as usize)
            } else {
                Err(DeployParseError(format!("{what} must be a non-negative integer, got {v}")))
            }
        };
        let secs = |v: f64, what: &str| -> Result<Duration, DeployParseError> {
            if v.is_finite() && v >= 0.0 {
                Ok(Duration::from_secs_f64(v))
            } else {
                Err(DeployParseError(format!("{what} must be non-negative seconds, got {v}")))
            }
        };

        let n = integer(
            get(At2::Cluster, "n")
                .ok_or_else(|| DeployParseError("[cluster] is missing `n`".to_string()))?,
            "n",
        )?;
        if n < 2 {
            return Err(DeployParseError("a cluster needs at least 2 nodes".to_string()));
        }
        let fanout = integer(get(At2::Cluster, "fanout").unwrap_or(6.0), "fanout")?.max(1);
        let period_ms = integer(get(At2::Cluster, "period_ms").unwrap_or(100.0), "period_ms")?;
        let rate_kbps = integer(get(At2::Cluster, "rate_kbps").unwrap_or(200.0), "rate_kbps")?;
        let payload =
            integer(get(At2::Cluster, "payload_bytes").unwrap_or(500.0), "payload_bytes")?;
        let data = integer(get(At2::Cluster, "data_packets").unwrap_or(10.0), "data_packets")?;
        let parity = integer(get(At2::Cluster, "parity_packets").unwrap_or(3.0), "parity_packets")?;
        if data == 0 || payload == 0 || rate_kbps == 0 || period_ms == 0 {
            return Err(DeployParseError(
                "rate_kbps, payload_bytes, data_packets and period_ms must be positive".to_string(),
            ));
        }
        let cap_kbps =
            integer(get(At2::Cluster, "upload_cap_kbps").unwrap_or(2000.0), "upload_cap_kbps")?;
        let stream_secs = get(At2::Cluster, "stream_secs").unwrap_or(5.0);
        let drain_secs = get(At2::Cluster, "drain_secs").unwrap_or(3.0);
        let seed = integer(get(At2::Cluster, "seed").unwrap_or(1.0), "seed")? as u64;
        let inject_loss = get(At2::Cluster, "inject_loss").unwrap_or(0.0);
        if !(0.0..=1.0).contains(&inject_loss) {
            return Err(DeployParseError(format!(
                "inject_loss must be within [0, 1], got {inject_loss}"
            )));
        }
        let cyclon = integer(get(At2::Cluster, "cyclon_degree").unwrap_or(0.0), "cyclon_degree")?;

        let adversity = AdversitySpec::from_toml_str(&rest)
            .map_err(|e| DeployParseError(format!("adversity sections: {}", e.0)))?;

        let cluster = ClusterConfig {
            n,
            gossip: GossipConfig::new(fanout)
                .with_gossip_period(Duration::from_millis(period_ms as u64)),
            stream: StreamConfig {
                rate_bps: rate_kbps as u64 * 1000,
                packet_payload_bytes: payload,
                window: WindowParams::new(data, parity),
            },
            upload_cap_bps: (cap_kbps > 0).then(|| cap_kbps as u64 * 1000),
            source_uncapped: true,
            max_backlog: Duration::from_secs(5),
            stream_duration: secs(stream_secs, "stream_secs")?,
            drain_duration: secs(drain_secs, "drain_secs")?,
            seed,
            inject_loss,
            crashes: Vec::new(),
            adversity,
            joiner_bootstrap: if cyclon > 0 {
                JoinerBootstrap::Cyclon { degree: cyclon }
            } else {
                JoinerBootstrap::Tracker
            },
            // Per-worker telemetry is attached by the host from the
            // `[telemetry]` section (each worker needs its own port).
            telemetry: None,
        };

        let processes = integer(
            get(At2::Deploy, "processes")
                .ok_or_else(|| DeployParseError("[deploy] is missing `processes`".to_string()))?,
            "processes",
        )?;
        let total_n = cluster.compiled_adversity().total_n;
        if processes == 0 || processes > total_n {
            return Err(DeployParseError(format!(
                "processes must be within [1, {total_n}], got {processes}"
            )));
        }
        let shards =
            integer(get(At2::Deploy, "shards_per_process").unwrap_or(0.0), "shards_per_process")?;
        let sockets =
            integer(get(At2::Deploy, "sockets_per_shard").unwrap_or(2.0), "sockets_per_shard")?
                .max(1);
        let start_delay_ms =
            integer(get(At2::Deploy, "start_delay_ms").unwrap_or(500.0), "start_delay_ms")?;
        let kill_process = match get(At2::Deploy, "kill_process") {
            Some(v) => {
                let k = integer(v, "kill_process")?;
                if k >= processes {
                    return Err(DeployParseError(format!(
                        "kill_process {k} out of range (processes = {processes})"
                    )));
                }
                Some(k)
            }
            None => None,
        };
        let kill_at = secs(get(At2::Deploy, "kill_at_secs").unwrap_or(0.0), "kill_at_secs")?;

        let telemetry = if seen_telemetry {
            let port_base = integer(get(At2::Telemetry, "port_base").unwrap_or(0.0), "port_base")?;
            if port_base > u16::MAX as usize {
                return Err(DeployParseError(format!("port_base {port_base} exceeds 65535")));
            }
            let sample_ms =
                integer(get(At2::Telemetry, "sample_ms").unwrap_or(250.0), "sample_ms")?.max(10);
            Some(TelemetrySection { port_base: port_base as u16, sample_ms: sample_ms as u64 })
        } else {
            None
        };

        Ok(DeployConfig {
            cluster,
            processes,
            shards_per_process: (shards > 0).then_some(shards),
            sockets_per_shard: sockets,
            start_delay: std::time::Duration::from_millis(start_delay_ms as u64),
            bind: bind.unwrap_or(Ipv4Addr::LOCALHOST),
            kill_process,
            kill_at: std::time::Duration::from_secs_f64(kill_at.as_secs_f64()),
            telemetry,
        })
    }

    /// The id slice worker `k` hosts: an even split of the total
    /// population (base nodes plus joiners) into `processes` contiguous
    /// ranges, node 0 (the source) always in process 0.
    pub fn slice_of(&self, k: usize, total_n: usize) -> (u32, u32) {
        let p = self.processes;
        let lo = (k * total_n / p) as u32;
        let hi = ((k + 1) * total_n / p) as u32;
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a 3-process deployment
[cluster]
n = 96
fanout = 6
period_ms = 100
rate_kbps = 200
payload_bytes = 500
data_packets = 10
parity_packets = 3
upload_cap_kbps = 0
stream_secs = 5
drain_secs = 3
seed = 7

[deploy]
processes = 3
shards_per_process = 1
sockets_per_shard = 2
start_delay_ms = 250
bind = "127.0.0.1"
kill_process = 2
kill_at_secs = 2.0

[telemetry]
port_base = 9600
sample_ms = 100

[catastrophic]
at_secs = 3.0
fraction = 0.1
"#;

    #[test]
    fn sample_file_parses_end_to_end() {
        let config = DeployConfig::from_toml_str(SAMPLE).expect("parses");
        assert_eq!(config.cluster.n, 96);
        assert_eq!(config.cluster.seed, 7);
        assert_eq!(config.cluster.upload_cap_bps, None, "0 kbps means uncapped");
        assert_eq!(config.cluster.stream.rate_bps, 200_000);
        assert_eq!(config.processes, 3);
        assert_eq!(config.shards_per_process, Some(1));
        assert_eq!(config.sockets_per_shard, 2);
        assert_eq!(config.start_delay, std::time::Duration::from_millis(250));
        assert_eq!(config.kill_process, Some(2));
        assert!(config.cluster.adversity.catastrophic.is_some(), "adversity rides along");
        let tel = config.telemetry.expect("telemetry section parses");
        assert_eq!(tel.port_base, 9600);
        assert_eq!(tel.sample_ms, 100);
        let worker2 = tel.config_for_worker(2);
        assert_eq!(worker2.scrape_addr.port(), 9602);
        assert_eq!(worker2.sample_period, std::time::Duration::from_millis(100));
    }

    #[test]
    fn slices_cover_the_population_without_gaps() {
        let config = DeployConfig::from_toml_str(SAMPLE).expect("parses");
        let total = config.cluster.compiled_adversity().total_n;
        let mut covered = 0u32;
        for k in 0..config.processes {
            let (lo, hi) = config.slice_of(k, total);
            assert_eq!(lo, covered, "slices must be contiguous");
            assert!(hi > lo, "every process hosts at least one node");
            covered = hi;
        }
        assert_eq!(covered as usize, total);
        assert_eq!(config.slice_of(0, total).0, 0, "the source lives in process 0");
    }

    #[test]
    fn defaults_fill_in_for_a_minimal_file() {
        let config = DeployConfig::from_toml_str("[cluster]\nn = 8\n[deploy]\nprocesses = 2\n")
            .expect("parses");
        assert_eq!(config.cluster.n, 8);
        assert_eq!(config.processes, 2);
        assert_eq!(config.bind, Ipv4Addr::LOCALHOST);
        assert_eq!(config.kill_process, None);
        assert!(config.cluster.adversity.is_none());
    }

    #[test]
    fn errors_name_the_problem() {
        let e = |s: &str| DeployConfig::from_toml_str(s).unwrap_err().0;
        assert!(e("[deploy]\nprocesses = 2\n").contains("missing [cluster]"));
        assert!(e("[cluster]\nn = 8\n").contains("missing [deploy]"));
        assert!(e("[cluster]\nn = 8\nbogus = 1\n[deploy]\nprocesses = 1\n").contains("bogus"));
        assert!(e("[cluster]\nn = 8\n[deploy]\nprocesses = 9\n").contains("within [1, 8]"));
        assert!(e("[cluster]\nn = 8\n[deploy]\nprocesses = 2\nkill_process = 5\n")
            .contains("out of range"));
        assert!(e("[cluster]\nn = 8\n[deploy]\nprocesses = 2\nbind = 127\n").contains("quoted"));
        assert!(e("[cluster]\nn = 8\n[deploy]\nprocesses = 2\n[nonsense]\nx = 1\n")
            .contains("unknown section"));
    }
}
