//! Cross-process deployment of a reactor cluster.
//!
//! Every other runtime in this workspace lives inside one process. This
//! crate is the deployment layer: it splits one cluster across N `gossipd`
//! processes — each hosting a contiguous id-slice on the
//! [`gossip_reactor::NodeHost`] runtime — and coordinates them with a
//! `gossip-coord` process that plays tracker, starter gun and report
//! collector in one.
//!
//! * [`config`] — one TOML file describing the whole deployment: a
//!   `[cluster]` section (population, stream, protocol), a `[deploy]`
//!   section (process count, per-process reactor shape, optional
//!   mid-stream process kill), and any `gossip-adversity` sections,
//!   delegated verbatim to [`gossip_adversity::AdversitySpec::from_toml_str`];
//! * [`proto`] — the length-prefixed control protocol between `gossipd`
//!   and the coordinator (hello → welcome → address exchange → start
//!   barrier → report);
//! * [`host`] — the `gossipd` side: bind the slice, publish addresses,
//!   wait for the start barrier, anchor the shared fault timeline on the
//!   broadcast wall-clock epoch, run, ship the report;
//! * [`coord`] — the coordinator: launch (or print commands for) the
//!   workers, relay the address book, broadcast one wall-clock start so
//!   every process's `Time::ZERO` coincides, optionally hard-kill one
//!   worker mid-stream, and merge every process's reports into one
//!   [`gossip_udp::cluster::ClusterReport`] via the same
//!   [`gossip_udp::cluster::assemble_report`] the in-process runtimes use;
//! * [`signal`] — SIGINT/SIGTERM as a stop flag, so an interrupted
//!   `gossipd` flushes a partial report marked degraded instead of dying
//!   silently.
//!
//! The demux id-prefix (see [`gossip_reactor::demux`]) already makes
//! placement location-transparent: a frame for node `g` routes the same
//! way whether `g` lives in this process or behind another host's socket,
//! so the protocol layer is untouched by deployment.

// `deny`, not `forbid`: the one FFI call installing the signal handler
// (`signal::sys`) carries a scoped allow; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coord;
pub mod host;
pub mod proto;
pub mod signal;

pub use config::{DeployConfig, DeployParseError};
pub use coord::{run_coordinator, AggregateReport, CoordOptions, ProcessOutcome};
pub use host::run_worker;
