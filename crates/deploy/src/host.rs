//! The `gossipd` worker: host one id-slice of the cluster and report back.
//!
//! Life of a worker: connect to the coordinator (with retry, so workers
//! can start before it listens), say hello, learn the assigned id slice
//! and the deployment file, bind the slice via
//! [`gossip_reactor::NodeHost::bind`], publish the hosted addresses, wait
//! at the start barrier, anchor the cluster clock on the broadcast
//! wall-clock epoch, run, and ship the binary-encoded report.
//!
//! A SIGINT/SIGTERM at any point after the sockets are bound turns into a
//! *degraded partial report*: the stop flag is raised, the shards drain
//! out within one poll interval, and whatever was measured goes to the
//! coordinator with `degraded = true` — an interrupted deployment still
//! yields data.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gossip_reactor::{NodeHost, ReactorOptions};
use gossip_udp::clock::ClusterClock;
use gossip_udp::codec;

use gossip_adversity::WallClockAnchor;

use crate::config::DeployConfig;
use crate::proto::{read_message, write_message, Message, ProtoError};
use crate::signal;

/// How long and how often the worker retries the coordinator connection:
/// workers may be exec'd before the coordinator listens.
const CONNECT_ATTEMPTS: usize = 100;
const CONNECT_PAUSE: Duration = Duration::from_millis(100);
/// Patience for the coordinator's Welcome after Hello.
const WELCOME_TIMEOUT: Duration = Duration::from_secs(30);
/// Patience for the start barrier: every other worker must bind and
/// publish first.
const START_TIMEOUT: Duration = Duration::from_secs(120);
/// Granularity of the pre-start wait, so a signal during the countdown is
/// honoured promptly.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// A worker-side failure: config, transport, protocol or cluster.
#[derive(Debug)]
pub enum WorkerError {
    /// The control connection or handshake failed.
    Proto(ProtoError),
    /// The deployment file the coordinator sent does not parse.
    Config(crate::config::DeployParseError),
    /// The reactor could not bind or run the slice.
    Cluster(gossip_udp::cluster::ClusterError),
    /// The coordinator violated the handshake order.
    Handshake(String),
}

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkerError::Proto(e) => write!(f, "{e}"),
            WorkerError::Config(e) => write!(f, "{e}"),
            WorkerError::Cluster(e) => write!(f, "cluster: {e}"),
            WorkerError::Handshake(m) => write!(f, "handshake: {m}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<ProtoError> for WorkerError {
    fn from(e: ProtoError) -> Self {
        WorkerError::Proto(e)
    }
}

fn connect_with_retry(coord: SocketAddr) -> Result<TcpStream, WorkerError> {
    let mut last = None;
    for _ in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(coord) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(CONNECT_PAUSE);
            }
        }
    }
    Err(WorkerError::Proto(ProtoError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "coordinator unreachable")
    }))))
}

/// Runs one `gossipd` worker to completion: handshake, host the slice,
/// report. Returns once the report (full or degraded) is on the wire.
///
/// `telemetry_json`, when set, makes the worker's sampler rewrite that
/// file with the live snapshot series as JSON — and switches telemetry on
/// (ephemeral scrape port) even when the deployment file has no
/// `[telemetry]` section.
///
/// # Errors
///
/// Returns a [`WorkerError`] if the coordinator is unreachable, the
/// handshake breaks, the config does not parse, or the slice cannot be
/// bound or run.
pub fn run_worker(
    coord: SocketAddr,
    index: u32,
    telemetry_json: Option<String>,
) -> Result<(), WorkerError> {
    signal::install();
    let mut control = connect_with_retry(coord)?;
    write_message(&mut control, &Message::Hello { index })?;

    control.set_read_timeout(Some(WELCOME_TIMEOUT)).map_err(ProtoError::Io)?;
    let (lo, hi, config) = match read_message(&mut control)? {
        Message::Welcome { lo, hi, config_toml } => {
            let config = DeployConfig::from_toml_str(&config_toml).map_err(WorkerError::Config)?;
            (lo, hi, config)
        }
        other => return Err(WorkerError::Handshake(format!("expected Welcome, got {other:?}"))),
    };

    let options = ReactorOptions {
        shards: config.shards_per_process,
        sockets_per_shard: config.sockets_per_shard,
        bind_addr: config.bind,
        ..ReactorOptions::default()
    };
    // Telemetry: the `[telemetry]` section gives worker k its own scrape
    // port; `--telemetry-json` adds the periodic file dump (and stands
    // alone, on an ephemeral port, when the section is absent).
    let mut cluster = config.cluster.clone();
    cluster.telemetry = match (&config.telemetry, &telemetry_json) {
        (Some(section), json) => {
            let mut tc = section.config_for_worker(index as usize);
            tc.json_path = json.clone();
            Some(tc)
        }
        (None, Some(path)) => Some(gossip_telemetry::TelemetryConfig {
            json_path: Some(path.clone()),
            ..gossip_telemetry::TelemetryConfig::default()
        }),
        (None, None) => None,
    };
    let host = NodeHost::bind(cluster, &options, Some((lo, hi))).map_err(WorkerError::Cluster)?;
    let total_n = host.total_n();
    let addrs = host.local_addresses().iter().map(|&(id, addr)| (id.as_u32(), addr)).collect();
    write_message(&mut control, &Message::Addrs { addrs, telemetry: host.telemetry_addr() })?;

    control.set_read_timeout(Some(START_TIMEOUT)).map_err(ProtoError::Io)?;
    let (anchor, table) = match read_message(&mut control)? {
        Message::Start { start_unix_micros, table } => {
            if table.len() != total_n {
                return Err(WorkerError::Handshake(format!(
                    "address table covers {} nodes, cluster has {total_n}",
                    table.len()
                )));
            }
            (WallClockAnchor::new(start_unix_micros), table)
        }
        other => return Err(WorkerError::Handshake(format!("expected Start, got {other:?}"))),
    };

    // Anchor the cluster clock on the shared wall-clock epoch: Time::ZERO
    // falls at the same instant in every process, so the compiled fault
    // timelines coincide. (The clock saturates at zero, so residual skew
    // from a late start only shortens the quiet lead-in.)
    let clock = ClusterClock::with_epoch(anchor.epoch_instant());
    let stop = Arc::new(AtomicBool::new(false));

    // Wait out the countdown in short slices so a signal before the start
    // still produces a (mostly empty, degraded) report instead of nothing.
    loop {
        if signal::stop_requested() {
            stop.store(true, Ordering::Relaxed);
            break;
        }
        let left = anchor.until_start();
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(WAIT_SLICE));
    }

    // Relay future signals into the run's stop flag. The watcher is
    // detached on purpose: it wakes every poll interval and exits when the
    // run is over (the `done` flag) — joining it would add nothing.
    let done = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                if signal::stop_requested() {
                    stop.store(true, Ordering::Relaxed);
                }
                std::thread::sleep(WAIT_SLICE);
            }
        });
    }

    let run_for =
        ClusterClock::to_std(config.cluster.stream_duration + config.cluster.drain_duration);
    let outcome = host.run(Arc::new(table), clock, Arc::clone(&stop), run_for).map_err(|e| {
        done.store(true, Ordering::Relaxed);
        WorkerError::Cluster(e)
    })?;
    done.store(true, Ordering::Relaxed);

    let payload = codec::encode_process_reports(&outcome.nodes, &outcome.shard_stats);
    control.set_read_timeout(None).map_err(ProtoError::Io)?;
    write_message(
        &mut control,
        &Message::Report {
            degraded: outcome.degraded,
            aborted_shards: outcome.aborted_shards as u32,
            payload,
        },
    )?;
    Ok(())
}
