//! A Cyclon-style peer sampling service.
//!
//! Each node keeps a bounded partial view of `(peer, age)` entries. Every
//! shuffle period it increments all ages, picks its *oldest* entry as a
//! shuffle partner, and sends it a random subset of its view (with itself,
//! age 0, included); the partner replies with a subset of its own view and
//! both merge, evicting first the entries they just sent away. The oldest
//! entry being the shuffle target gives the protocol its self-healing
//! property: entries for dead nodes age out because the dead never answer.
//!
//! The implementation is sans-io like the protocol core: the owner calls
//! [`CyclonView::on_shuffle_round`], delivers [`ShuffleMessage`]s via
//! [`CyclonView::on_message`], and forwards the returned replies.

use gossip_sim::DetRng;
use gossip_types::NodeId;

use crate::Sampler;

/// Configuration of the shuffling view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclonConfig {
    /// Maximum entries in the partial view (Cyclon's `c`; typically 20–50).
    pub view_size: usize,
    /// Entries exchanged per shuffle (Cyclon's `ℓ`; must be ≤ `view_size`).
    pub shuffle_size: usize,
}

impl CyclonConfig {
    /// A standard small-deployment configuration: view of 20, shuffles of 8.
    pub const fn default_small() -> Self {
        CyclonConfig { view_size: 20, shuffle_size: 8 }
    }
}

impl Default for CyclonConfig {
    fn default() -> Self {
        Self::default_small()
    }
}

/// One view entry: a peer and how many shuffle rounds ago we heard of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ViewEntry {
    node: NodeId,
    age: u32,
}

/// A shuffle exchange on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleMessage {
    /// Shuffle request carrying a subset of the sender's view.
    Request(
        /// `(node, age)` pairs offered by the requester.
        Vec<(NodeId, u32)>,
    ),
    /// Shuffle reply carrying a subset of the receiver's view.
    Reply(
        /// `(node, age)` pairs offered back.
        Vec<(NodeId, u32)>,
    ),
}

/// The Cyclon partial view of one node.
///
/// # Examples
///
/// ```
/// use gossip_membership::{CyclonConfig, CyclonView, Sampler};
/// use gossip_sim::DetRng;
/// use gossip_types::NodeId;
///
/// let mut rng = DetRng::seed_from(1);
/// let bootstrap: Vec<NodeId> = (1..=5).map(NodeId::new).collect();
/// let mut view = CyclonView::new(NodeId::new(0), CyclonConfig::default_small(), &bootstrap);
/// assert_eq!(view.known(), 5);
/// let partners = view.sample(3, &mut rng);
/// assert_eq!(partners.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CyclonView {
    self_id: NodeId,
    config: CyclonConfig,
    entries: Vec<ViewEntry>,
    /// Entries sent in the last outgoing request, pending the reply (they
    /// are evicted first when the reply arrives).
    in_flight: Vec<NodeId>,
}

impl CyclonView {
    /// Creates a view seeded with `bootstrap` peers (age 0).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`shuffle_size` 0 or
    /// larger than `view_size`).
    pub fn new(self_id: NodeId, config: CyclonConfig, bootstrap: &[NodeId]) -> Self {
        assert!(
            config.shuffle_size >= 1 && config.shuffle_size <= config.view_size,
            "shuffle size must be in 1..=view_size"
        );
        let entries = bootstrap
            .iter()
            .filter(|&&n| n != self_id)
            .take(config.view_size)
            .map(|&node| ViewEntry { node, age: 0 })
            .collect();
        CyclonView { self_id, config, entries, in_flight: Vec::new() }
    }

    /// Executes one shuffle round: ages the view and initiates a shuffle
    /// with the oldest peer. Returns `(target, request)` to be sent, or
    /// `None` if the view is empty.
    pub fn on_shuffle_round(&mut self, rng: &mut DetRng) -> Option<(NodeId, ShuffleMessage)> {
        for e in &mut self.entries {
            e.age += 1;
        }
        let (oldest_idx, _) = self.entries.iter().enumerate().max_by_key(|(_, e)| e.age)?;
        let target = self.entries[oldest_idx].node;
        // The target is removed: if it is alive the reply replenishes the
        // view; if it is dead its entry is gone — self-healing.
        self.entries.swap_remove(oldest_idx);

        let mut offer = self.pick_subset(self.config.shuffle_size.saturating_sub(1), rng);
        offer.push((self.self_id, 0));
        self.in_flight = offer.iter().map(|&(n, _)| n).filter(|&n| n != self.self_id).collect();
        Some((target, ShuffleMessage::Request(offer)))
    }

    /// Handles an incoming shuffle message. For a `Request`, returns the
    /// `Reply` to send back.
    pub fn on_message(
        &mut self,
        from: NodeId,
        msg: ShuffleMessage,
        rng: &mut DetRng,
    ) -> Option<ShuffleMessage> {
        match msg {
            ShuffleMessage::Request(theirs) => {
                let mine = self.pick_subset(self.config.shuffle_size, rng);
                let sent: Vec<NodeId> = mine.iter().map(|&(n, _)| n).collect();
                self.merge(theirs, &sent);
                let _ = from;
                Some(ShuffleMessage::Reply(mine))
            }
            ShuffleMessage::Reply(theirs) => {
                let sent = std::mem::take(&mut self.in_flight);
                self.merge(theirs, &sent);
                None
            }
        }
    }

    /// Picks up to `k` random entries of the current view (without removing
    /// them).
    fn pick_subset(&self, k: usize, rng: &mut DetRng) -> Vec<(NodeId, u32)> {
        let picked = rng.sample_indices(self.entries.len(), k);
        picked.into_iter().map(|i| (self.entries[i].node, self.entries[i].age)).collect()
    }

    /// Merges received entries into the view: skip self and duplicates,
    /// fill free slots, then replace entries that were just sent away, then
    /// replace the oldest.
    fn merge(&mut self, incoming: Vec<(NodeId, u32)>, sent_away: &[NodeId]) {
        let mut replaceable: Vec<NodeId> = sent_away.to_vec();
        for (node, age) in incoming {
            if node == self.self_id {
                continue;
            }
            if let Some(existing) = self.entries.iter_mut().find(|e| e.node == node) {
                // Keep the fresher age for a node we already know.
                existing.age = existing.age.min(age);
                continue;
            }
            if self.entries.len() < self.config.view_size {
                self.entries.push(ViewEntry { node, age });
            } else if let Some(pos) = replaceable
                .pop()
                .and_then(|victim| self.entries.iter().position(|e| e.node == victim))
            {
                self.entries[pos] = ViewEntry { node, age };
            } else if let Some((pos, _)) =
                self.entries.iter().enumerate().max_by_key(|(_, e)| e.age)
            {
                self.entries[pos] = ViewEntry { node, age };
            }
        }
    }

    /// Adopts `peer` at age 0 — contact is proof of life. A known peer has
    /// its age refreshed; an unknown one fills a free slot or replaces the
    /// oldest entry. Self-adoptions are ignored.
    ///
    /// Runtimes that cannot afford a dedicated shuffle channel per contact
    /// use this to piggyback view maintenance on protocol traffic: every
    /// frame received from a peer keeps (or makes) that peer's entry
    /// young, so stale bootstrap entries drift toward eviction exactly as
    /// unanswered shuffle targets do.
    pub fn adopt(&mut self, peer: NodeId) {
        self.merge(vec![(peer, 0)], &[]);
    }

    /// Returns the current view as node ids.
    pub fn view(&self) -> Vec<NodeId> {
        self.entries.iter().map(|e| e.node).collect()
    }

    /// Returns the age of the oldest entry (0 for an empty view).
    pub fn oldest_age(&self) -> u32 {
        self.entries.iter().map(|e| e.age).max().unwrap_or(0)
    }

    #[cfg(test)]
    fn age_entries_for_test(&mut self, by: u32) {
        for e in &mut self.entries {
            e.age += by;
        }
    }
}

impl Sampler for CyclonView {
    fn sample(&mut self, k: usize, rng: &mut DetRng) -> Vec<NodeId> {
        let picked = rng.sample_indices(self.entries.len(), k);
        picked.into_iter().map(|i| self.entries[i].node).collect()
    }

    fn known(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fully connected shuffle simulation for `rounds` rounds.
    fn simulate(n: u32, rounds: u32, seed: u64) -> Vec<CyclonView> {
        let config = CyclonConfig { view_size: 8, shuffle_size: 4 };
        let mut rng = DetRng::seed_from(seed);
        // Bootstrap: ring-ish neighbourhoods so the initial graph is poorly
        // mixed (the shuffle has work to do).
        let mut views: Vec<CyclonView> = (0..n)
            .map(|i| {
                let bootstrap: Vec<NodeId> = (1..=4).map(|d| NodeId::new((i + d) % n)).collect();
                CyclonView::new(NodeId::new(i), config, &bootstrap)
            })
            .collect();
        for _ in 0..rounds {
            for i in 0..n as usize {
                let Some((target, req)) = views[i].on_shuffle_round(&mut rng) else {
                    continue;
                };
                let reply = views[target.index()].on_message(NodeId::new(i as u32), req, &mut rng);
                if let Some(reply) = reply {
                    views[i].on_message(target, reply, &mut rng);
                }
            }
        }
        views
    }

    #[test]
    fn views_stay_bounded_and_self_free() {
        let views = simulate(30, 50, 1);
        for (i, v) in views.iter().enumerate() {
            assert!(v.known() <= 8, "view of node {i} exceeded capacity");
            assert!(v.known() >= 4, "view of node {i} nearly empty: {}", v.known());
            assert!(!v.view().contains(&NodeId::new(i as u32)), "node {i} contains itself");
        }
    }

    #[test]
    fn shuffling_mixes_the_ring_into_a_random_graph() {
        let n = 40u32;
        let views = simulate(n, 60, 2);
        // In the bootstrap ring every edge spans ≤ 4 positions. After
        // shuffling, edges should span the whole ring: measure the mean
        // circular distance of view entries.
        let mut total = 0u64;
        let mut count = 0u64;
        for (i, v) in views.iter().enumerate() {
            for peer in v.view() {
                let d = (peer.index() as i64 - i as i64).rem_euclid(n as i64) as u64;
                total += d.min(n as u64 - d);
                count += 1;
            }
        }
        let mean = total as f64 / count as f64;
        // Uniform expectation is n/4 = 10; the bootstrap mean is 2.5.
        assert!(mean > 6.0, "mean edge span {mean:.1} — shuffle failed to mix");
    }

    #[test]
    fn indegree_is_balanced_after_mixing() {
        let n = 40u32;
        let views = simulate(n, 80, 3);
        let mut indegree = vec![0u32; n as usize];
        for v in &views {
            for peer in v.view() {
                indegree[peer.index()] += 1;
            }
        }
        let max = *indegree.iter().max().expect("non-empty");
        let min = *indegree.iter().min().expect("non-empty");
        assert!(max <= 4 * min.max(1), "indegree skew too high: min {min}, max {max}");
    }

    #[test]
    fn dead_nodes_age_out() {
        let config = CyclonConfig { view_size: 4, shuffle_size: 2 };
        let mut rng = DetRng::seed_from(4);
        // Node 0 knows 1 (dead) and 2 (alive).
        let mut a = CyclonView::new(NodeId::new(0), config, &[NodeId::new(1), NodeId::new(2)]);
        let mut alive = CyclonView::new(NodeId::new(2), config, &[NodeId::new(0)]);
        for _ in 0..10 {
            if let Some((target, req)) = a.on_shuffle_round(&mut rng) {
                if target == NodeId::new(2) {
                    if let Some(reply) = alive.on_message(NodeId::new(0), req, &mut rng) {
                        a.on_message(NodeId::new(2), reply, &mut rng);
                    }
                }
                // Shuffles to node 1 go unanswered: its entry just vanishes.
            }
        }
        assert!(
            !a.view().contains(&NodeId::new(1)),
            "dead node should age out of the view: {:?}",
            a.view()
        );
    }

    #[test]
    fn adopt_refreshes_known_peers_and_evicts_the_oldest() {
        let config = CyclonConfig { view_size: 2, shuffle_size: 1 };
        let mut view = CyclonView::new(NodeId::new(0), config, &[NodeId::new(1), NodeId::new(2)]);
        view.age_entries_for_test(5);
        // Re-adopting a known peer resets its age, not the view size.
        view.adopt(NodeId::new(1));
        assert_eq!(view.known(), 2);
        assert_eq!(view.oldest_age(), 5, "peer 2 stays stale");
        // Adopting a newcomer into a full view evicts the oldest entry.
        view.adopt(NodeId::new(3));
        assert_eq!(view.known(), 2);
        assert!(view.view().contains(&NodeId::new(3)));
        assert!(!view.view().contains(&NodeId::new(2)), "the stale entry goes first");
        // Self-adoption is a no-op.
        view.adopt(NodeId::new(0));
        assert!(!view.view().contains(&NodeId::new(0)));
    }

    #[test]
    fn merge_keeps_fresher_age() {
        let config = CyclonConfig { view_size: 4, shuffle_size: 2 };
        let mut view = CyclonView::new(NodeId::new(0), config, &[NodeId::new(1)]);
        view.merge(vec![(NodeId::new(1), 0)], &[]);
        assert_eq!(view.known(), 1, "duplicate not re-inserted");
        assert_eq!(view.oldest_age(), 0);
    }

    #[test]
    #[should_panic(expected = "shuffle size")]
    fn degenerate_config_rejected() {
        CyclonView::new(NodeId::new(0), CyclonConfig { view_size: 2, shuffle_size: 3 }, &[]);
    }
}
