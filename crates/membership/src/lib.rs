//! Membership substrate: who can a node gossip with?
//!
//! The paper assumes **full membership** — `selectNodes` draws uniformly
//! from the set of *all* nodes (its Algorithm 1, line 26) — which is
//! realistic at 230 nodes but not at internet scale. Deployed gossip
//! systems instead run a *peer sampling service*: each node maintains a
//! small partial view that is continuously shuffled so that draws from it
//! approximate uniform sampling.
//!
//! This crate provides both:
//!
//! * [`FullMembership`] — the paper's model;
//! * [`CyclonView`] — a Cyclon-style shuffling partial view (Voulgaris,
//!   Gavidia, van Steen, JNSM 2005), implemented sans-io like the protocol
//!   core: shuffle messages in, shuffle messages out;
//! * the [`Sampler`] trait they share, which the experiment harness uses to
//!   run the paper's streaming workload over either membership model (the
//!   `ext_membership` extension experiment).
//!
//! # Examples
//!
//! ```
//! use gossip_membership::{FullMembership, Sampler};
//! use gossip_sim::DetRng;
//! use gossip_types::NodeId;
//!
//! let all: Vec<NodeId> = (0..10).map(NodeId::new).collect();
//! let mut membership = FullMembership::new(all, NodeId::new(0));
//! let mut rng = DetRng::seed_from(1);
//! let partners = membership.sample(3, &mut rng);
//! assert_eq!(partners.len(), 3);
//! assert!(!partners.contains(&NodeId::new(0)), "never samples self");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cyclon;
mod full;
pub mod wire;

pub use cyclon::{CyclonConfig, CyclonView, ShuffleMessage};
pub use full::FullMembership;

use gossip_sim::DetRng;
use gossip_types::NodeId;

/// A source of gossip partners.
///
/// Implementations must never return the local node and never return
/// duplicates within one call.
pub trait Sampler {
    /// Draws up to `k` distinct candidate partners.
    fn sample(&mut self, k: usize, rng: &mut DetRng) -> Vec<NodeId>;

    /// Returns the number of nodes currently known.
    fn known(&self) -> usize;
}
