//! Full membership: the paper's model.

use gossip_sim::DetRng;
use gossip_types::NodeId;

use crate::Sampler;

/// Complete knowledge of the node population (Algorithm 1, line 26:
/// "`f` uniformly random chosen nodes in the set of all nodes").
///
/// # Examples
///
/// ```
/// use gossip_membership::{FullMembership, Sampler};
/// use gossip_sim::DetRng;
/// use gossip_types::NodeId;
///
/// let all: Vec<NodeId> = (0..230).map(NodeId::new).collect();
/// let mut m = FullMembership::new(all, NodeId::new(7));
/// assert_eq!(m.known(), 229);
/// let mut rng = DetRng::seed_from(3);
/// assert_eq!(m.sample(7, &mut rng).len(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct FullMembership {
    /// All nodes except self.
    others: Vec<NodeId>,
}

impl FullMembership {
    /// Creates a full membership over `all` nodes, excluding `self_id`.
    pub fn new(all: Vec<NodeId>, self_id: NodeId) -> Self {
        FullMembership { others: all.into_iter().filter(|&n| n != self_id).collect() }
    }
}

impl Sampler for FullMembership {
    fn sample(&mut self, k: usize, rng: &mut DetRng) -> Vec<NodeId> {
        let picked = rng.sample_indices(self.others.len(), k);
        picked.into_iter().map(|i| self.others[i]).collect()
    }

    fn known(&self) -> usize {
        self.others.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excludes_self_and_dedups() {
        let all: Vec<NodeId> = (0..20).map(NodeId::new).collect();
        let mut m = FullMembership::new(all, NodeId::new(5));
        let mut rng = DetRng::seed_from(1);
        for _ in 0..50 {
            let s = m.sample(7, &mut rng);
            assert_eq!(s.len(), 7);
            assert!(!s.contains(&NodeId::new(5)));
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 7);
        }
    }

    #[test]
    fn saturates_at_population() {
        let all: Vec<NodeId> = (0..5).map(NodeId::new).collect();
        let mut m = FullMembership::new(all, NodeId::new(0));
        let mut rng = DetRng::seed_from(2);
        assert_eq!(m.sample(100, &mut rng).len(), 4);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let all: Vec<NodeId> = (0..50).map(NodeId::new).collect();
        let mut m = FullMembership::new(all, NodeId::new(0));
        let mut rng = DetRng::seed_from(3);
        let mut counts = [0u32; 50];
        for _ in 0..10_000 {
            for n in m.sample(5, &mut rng) {
                counts[n.index()] += 1;
            }
        }
        // Expected hits per node ≈ 10_000 × 5 / 49 ≈ 1020.
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!((800..1300).contains(&c), "node {i} sampled {c} times");
        }
    }
}
