//! Wire encoding of [`ShuffleMessage`]s, for runtimes that carry
//! membership shuffles over real sockets.
//!
//! The simulator delivers shuffles as in-memory envelopes; the socket
//! runtimes need bytes. The layout mirrors `gossip_core::wire` — a tag
//! byte, the sender id, an element count, then fixed-size elements — so
//! one receive path can dispatch on the first byte:
//!
//! ```text
//! [ tag: u8 ][ sender: u32 LE ][ count: u16 LE ][ node: u32 LE, age: u32 LE ] × count
//! ```
//!
//! The tags ([`TAG_SHUFFLE_REQUEST`], [`TAG_SHUFFLE_REPLY`]) are chosen
//! disjoint from the protocol tags (`gossip_core::wire` uses 1..=4), so a
//! shuffle datagram can never parse as a protocol message nor vice versa;
//! [`is_shuffle`] is the cheap first-byte dispatch check.

use gossip_types::NodeId;

use crate::ShuffleMessage;

/// Tag byte of an encoded [`ShuffleMessage::Request`].
pub const TAG_SHUFFLE_REQUEST: u8 = 0x4D;
/// Tag byte of an encoded [`ShuffleMessage::Reply`].
pub const TAG_SHUFFLE_REPLY: u8 = 0x4E;

/// Returns whether `datagram` starts like an encoded shuffle message.
/// A `true` answer only promises the tag matches; [`decode_shuffle`]
/// still validates the rest.
pub fn is_shuffle(datagram: &[u8]) -> bool {
    matches!(datagram.first(), Some(&TAG_SHUFFLE_REQUEST | &TAG_SHUFFLE_REPLY))
}

/// Encodes `msg` from `sender` into a fresh datagram buffer.
///
/// # Panics
///
/// Panics if the message carries more than `u16::MAX` entries — Cyclon
/// shuffle subsets are single-digit sized.
pub fn encode_shuffle(sender: NodeId, msg: &ShuffleMessage) -> Vec<u8> {
    let (tag, entries) = match msg {
        ShuffleMessage::Request(entries) => (TAG_SHUFFLE_REQUEST, entries),
        ShuffleMessage::Reply(entries) => (TAG_SHUFFLE_REPLY, entries),
    };
    let count = u16::try_from(entries.len()).expect("shuffle subsets are tiny");
    let mut buf = Vec::with_capacity(7 + entries.len() * 8);
    buf.push(tag);
    buf.extend_from_slice(&sender.as_u32().to_le_bytes());
    buf.extend_from_slice(&count.to_le_bytes());
    for &(node, age) in entries {
        buf.extend_from_slice(&node.as_u32().to_le_bytes());
        buf.extend_from_slice(&age.to_le_bytes());
    }
    buf
}

/// Decodes a datagram into the sender and the shuffle message.
///
/// Returns `None` for a non-shuffle tag, truncated input, or trailing
/// garbage (all-or-nothing, like the protocol codec).
pub fn decode_shuffle(datagram: &[u8]) -> Option<(NodeId, ShuffleMessage)> {
    let (&tag, mut rest) = datagram.split_first()?;
    if rest.len() < 6 {
        return None;
    }
    let sender = NodeId::new(u32::from_le_bytes(rest[..4].try_into().ok()?));
    let count = usize::from(u16::from_le_bytes(rest[4..6].try_into().ok()?));
    rest = &rest[6..];
    if rest.len() != count * 8 {
        return None;
    }
    let entries: Vec<(NodeId, u32)> = rest
        .chunks_exact(8)
        .map(|c| {
            let node = u32::from_le_bytes(c[..4].try_into().expect("chunk of 8"));
            let age = u32::from_le_bytes(c[4..].try_into().expect("chunk of 8"));
            (NodeId::new(node), age)
        })
        .collect();
    match tag {
        TAG_SHUFFLE_REQUEST => Some((sender, ShuffleMessage::Request(entries))),
        TAG_SHUFFLE_REPLY => Some((sender, ShuffleMessage::Reply(entries))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_and_reply_roundtrip() {
        let entries = vec![(NodeId::new(3), 0), (NodeId::new(7), 12), (NodeId::new(42), 1)];
        for msg in
            [ShuffleMessage::Request(entries.clone()), ShuffleMessage::Reply(entries.clone())]
        {
            let bytes = encode_shuffle(NodeId::new(9), &msg);
            assert!(is_shuffle(&bytes));
            let (sender, decoded) = decode_shuffle(&bytes).expect("well-formed");
            assert_eq!(sender, NodeId::new(9));
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn empty_subset_roundtrips() {
        let bytes = encode_shuffle(NodeId::new(0), &ShuffleMessage::Request(Vec::new()));
        let (_, decoded) = decode_shuffle(&bytes).expect("well-formed");
        assert_eq!(decoded, ShuffleMessage::Request(Vec::new()));
    }

    #[test]
    fn protocol_tags_are_never_shuffles() {
        // gossip_core::wire uses tags 1..=4; none may dispatch as shuffle.
        for tag in 0..=4u8 {
            assert!(!is_shuffle(&[tag, 0, 0, 0, 0, 0, 0]));
            assert!(decode_shuffle(&[tag, 0, 0, 0, 0, 0, 0]).is_none());
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes =
            encode_shuffle(NodeId::new(1), &ShuffleMessage::Reply(vec![(NodeId::new(2), 5)]));
        for cut in 1..bytes.len() {
            assert!(decode_shuffle(&bytes[..cut]).is_none(), "truncated at {cut}");
        }
        let mut long = bytes.clone();
        long.push(0xAA);
        assert!(decode_shuffle(&long).is_none(), "trailing garbage must reject");
        assert!(decode_shuffle(&[]).is_none());
    }

    #[test]
    fn count_must_match_body_exactly() {
        let mut bytes =
            encode_shuffle(NodeId::new(1), &ShuffleMessage::Request(vec![(NodeId::new(2), 0)]));
        bytes[5] = 2; // claim two entries, carry one
        assert!(decode_shuffle(&bytes).is_none());
    }
}
