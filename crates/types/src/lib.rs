//! Shared primitive types for the gossip-streaming workspace.
//!
//! This crate hosts the handful of vocabulary types that every other crate in
//! the workspace speaks: virtual [`Time`] / [`Duration`] newtypes (microsecond
//! resolution) and the [`NodeId`] identity of a participant. Keeping them in a
//! leaf crate lets the protocol core stay sans-io (it never has to import the
//! simulator just to name a point in time) while the simulator, the network
//! model and the real-socket runtime all agree on representations.
//!
//! # Examples
//!
//! ```
//! use gossip_types::{Duration, NodeId, Time};
//!
//! let start = Time::ZERO;
//! let later = start + Duration::from_millis(200);
//! assert_eq!(later - start, Duration::from_millis(200));
//! assert!(later > start);
//!
//! let node = NodeId::new(42);
//! assert_eq!(node.index(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod time;

pub use node::NodeId;
pub use time::{Duration, Time};
