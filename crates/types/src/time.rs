//! Virtual time primitives.
//!
//! All components of the workspace — the discrete-event simulator, the
//! protocol core, the stream player and the UDP runtime — measure time as
//! microseconds from an arbitrary epoch (experiment start). The newtypes here
//! make instants and spans impossible to confuse and keep the arithmetic
//! checked in debug builds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant of virtual time, counted in microseconds from the start of an
/// experiment.
///
/// `Time` is an absolute point; spans between two points are [`Duration`]s.
/// The type is `Copy`, totally ordered, and cheap to hash, which makes it
/// suitable as a scheduling key in the discrete-event queue.
///
/// # Examples
///
/// ```
/// use gossip_types::{Duration, Time};
///
/// let t = Time::from_millis(1_500);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t + Duration::from_millis(500), Time::from_secs(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of virtual time, counted in microseconds.
///
/// Unlike [`std::time::Duration`], this type is a thin `u64` wrapper so that
/// it can be used freely in tight simulation loops and as part of scheduling
/// keys without conversions.
///
/// # Examples
///
/// ```
/// use gossip_types::Duration;
///
/// let gossip_period = Duration::from_millis(200);
/// assert_eq!(gossip_period * 5, Duration::from_secs(1));
/// assert_eq!(Duration::from_secs(1) / gossip_period, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The experiment epoch (time zero).
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from microseconds since the epoch.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros)
    }

    /// Creates an instant from milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000)
    }

    /// Returns the number of microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds since the epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time as fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`, or [`Duration::ZERO`] if
    /// `earlier` is in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, saturating at [`Time::MAX`] instead of
    /// overflowing.
    #[inline]
    pub fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The greatest representable span; used as an "infinite" sentinel (e.g.
    /// the paper's `X = ∞` refresh rate).
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a span from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be a finite non-negative number");
        Duration((secs * 1e6).round() as u64)
    }

    /// Returns the span in microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span in whole milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `true` if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `self - other`, or [`Duration::ZERO`] if `other` is larger.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a fractional factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be a finite non-negative number");
        Duration((self.0 as f64 * factor).round() as u64)
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0.checked_add(rhs.0).expect("time overflow"))
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time underflow"))
    }
}

impl SubAssign<Duration> for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Sub for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        rhs * self
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Div for Duration {
    type Output = u64;
    /// Returns how many whole `rhs` spans fit into `self`.
    #[inline]
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Duration::MAX {
            write!(f, "inf")
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(Time::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Time::from_millis(2).as_micros(), 2_000);
        assert_eq!(Duration::from_secs(3).as_millis(), 3_000);
        assert_eq!(Duration::from_secs_f64(0.2), Duration::from_millis(200));
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_secs(1);
        let d = Duration::from_millis(250);
        assert_eq!((t + d) - t, d);
        assert_eq!(t + d - d, t);
        assert_eq!(d * 4, Duration::from_secs(1));
        assert_eq!(Duration::from_secs(1) / d, 4);
        assert_eq!(
            Duration::from_millis(450) % Duration::from_millis(200),
            Duration::from_millis(50)
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Time::ZERO.saturating_since(Time::from_secs(1)), Duration::ZERO);
        assert_eq!(Time::MAX.saturating_add(Duration::from_secs(1)), Time::MAX);
        assert_eq!(Duration::ZERO.saturating_sub(Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_panics() {
        let _ = Time::ZERO - Time::from_secs(1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_micros(5).to_string(), "5us");
        assert_eq!(Duration::from_millis(5).to_string(), "5ms");
        assert_eq!(Duration::from_secs(5).to_string(), "5.000s");
        assert_eq!(Duration::MAX.to_string(), "inf");
        assert_eq!(Time::from_millis(1500).to_string(), "1.500s");
    }

    #[test]
    fn ordering_and_min_max() {
        let a = Time::from_secs(1);
        let b = Time::from_secs(2);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Duration::from_secs(1).max(Duration::from_secs(2)), Duration::from_secs(2));
        assert_eq!(Duration::from_secs(1).min(Duration::from_secs(2)), Duration::from_secs(1));
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = (1..=4).map(Duration::from_secs).sum();
        assert_eq!(total, Duration::from_secs(10));
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(Duration::from_micros(3).mul_f64(0.5), Duration::from_micros(2));
        assert_eq!(Duration::from_secs(1).mul_f64(1.5), Duration::from_millis(1500));
    }
}
