//! Participant identity.

use std::fmt;

/// The identity of a participant in the dissemination.
///
/// Nodes are numbered densely from zero, which lets every component index
/// per-node state with a plain `Vec`. The source is conventionally node 0 in
/// the experiment harness, but nothing in the protocol relies on that.
///
/// # Examples
///
/// ```
/// use gossip_types::NodeId;
///
/// let ids: Vec<NodeId> = (0..3).map(NodeId::new).collect();
/// assert_eq!(ids[2].index(), 2);
/// assert_eq!(ids[1].to_string(), "n1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identity from its dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of the node (usable to index per-node `Vec`s).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value (used by the wire codec).
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_u32() {
        let id = NodeId::new(17);
        assert_eq!(u32::from(id), 17);
        assert_eq!(NodeId::from(17u32), id);
        assert_eq!(id.index(), 17);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId::new(0).to_string(), "n0");
        assert_eq!(NodeId::new(229).to_string(), "n229");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
