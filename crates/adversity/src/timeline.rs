//! The compiled form of an adversity spec: typed fault events on a shared
//! timeline, plus static per-node profiles.

use gossip_types::{NodeId, Time};

use crate::chaos::ChaosPlan;

/// What happens at one instant of the fault timeline.
///
/// Node-scoped actions (`Crash`/`Rejoin`/`Join`) name their victim;
/// network-scoped actions (`Partition`/`Heal`, `ThrottleStart`/
/// `ThrottleEnd`) name an index into the compiled plan's
/// [`CompiledAdversity::partitions`] / [`CompiledAdversity::throttles`]
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The node crashes: it loses all protocol state, stops sending and
    /// drops everything addressed to it.
    Crash(NodeId),
    /// A previously crashed node comes back with *fresh* protocol state
    /// (a crash loses state; only the stream player's history of what it
    /// already watched survives, because the viewer did watch it).
    Rejoin(NodeId),
    /// A brand-new node (id ≥ the base population) boots mid-run and
    /// starts participating from nothing.
    Join(NodeId),
    /// The k-th partition activates: the membership graph splits into the
    /// named cells and traffic between cells is dropped by the transport.
    Partition(u32),
    /// The k-th partition heals: cross-cell traffic flows again.
    Heal(u32),
    /// The k-th throttle starts: its victims' upload caps drop to the
    /// throttled rate.
    ThrottleStart(u32),
    /// The k-th throttle ends: its victims' upload caps are restored.
    ThrottleEnd(u32),
}

impl FaultAction {
    /// The node a node-scoped action applies to (`None` for the
    /// network-scoped partition/throttle actions).
    pub fn node(self) -> Option<NodeId> {
        match self {
            FaultAction::Crash(n) | FaultAction::Rejoin(n) | FaultAction::Join(n) => Some(n),
            _ => None,
        }
    }
}

/// One timed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires (offset from the run's start, `Time::ZERO`).
    pub at: Time,
    /// What happens.
    pub action: FaultAction,
}

/// The ordered fault schedule of one run.
///
/// Events are sorted by `(time, compilation order)`; ties at the same
/// instant apply in list order. The compiler guarantees *order-soundness*
/// (checked by [`FaultTimeline::is_order_sound`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// Wraps a pre-ordered event list (the compiler's output).
    pub(crate) fn new(events: Vec<FaultEvent>) -> Self {
        FaultTimeline { events }
    }

    /// The events, ordered by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every node that is crashed at `horizon` (crashed without a later
    /// rejoin before the horizon).
    pub fn dead_at(&self, horizon: Time) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = Vec::new();
        for ev in &self.events {
            if ev.at > horizon {
                break;
            }
            match ev.action {
                FaultAction::Crash(n) => dead.push(n),
                FaultAction::Rejoin(n) => dead.retain(|&d| d != n),
                _ => {}
            }
        }
        dead.sort_unstable();
        dead
    }

    /// Checks the structural invariants given a total population of
    /// `total_n` nodes (base plus joiners):
    ///
    /// * events are sorted by time;
    /// * no node crashes twice without an intervening rejoin;
    /// * no node rejoins unless currently crashed;
    /// * no node joins twice, and joiners never crash before joining;
    /// * a heal only follows its (currently active) partition, and a
    ///   partition index never re-activates while still split;
    /// * throttle intervals never overlap per class: `ThrottleEnd(k)` only
    ///   follows an active `ThrottleStart(k)`, and class `k` never starts
    ///   twice without an intervening end.
    pub fn is_order_sound(&self, total_n: usize) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum S {
            NeverJoined,
            Alive,
            Dead,
        }
        // Ids outside 0..total_n are unconditionally unsound.
        if self.events.iter().any(|e| e.action.node().is_some_and(|n| n.index() >= total_n)) {
            return false;
        }
        let mut state = vec![S::Alive; total_n];
        for e in &self.events {
            if let FaultAction::Join(n) = e.action {
                state[n.index()] = S::NeverJoined;
            }
        }
        // Active/inactive interval state per partition and throttle class.
        let mut split: Vec<bool> = Vec::new();
        let mut throttled: Vec<bool> = Vec::new();
        fn active(v: &mut Vec<bool>, k: u32) -> &mut bool {
            let k = k as usize;
            if v.len() <= k {
                v.resize(k + 1, false);
            }
            &mut v[k]
        }
        let mut last = Time::ZERO;
        for e in &self.events {
            if e.at < last {
                return false;
            }
            last = e.at;
            match e.action {
                FaultAction::Crash(n) | FaultAction::Rejoin(n) | FaultAction::Join(n) => {
                    let s = &mut state[n.index()];
                    match e.action {
                        FaultAction::Crash(_) if *s == S::Alive => *s = S::Dead,
                        FaultAction::Rejoin(_) if *s == S::Dead => *s = S::Alive,
                        FaultAction::Join(_) if *s == S::NeverJoined => *s = S::Alive,
                        _ => return false,
                    }
                }
                FaultAction::Partition(k) => {
                    let a = active(&mut split, k);
                    if *a {
                        return false;
                    }
                    *a = true;
                }
                FaultAction::Heal(k) => {
                    let a = active(&mut split, k);
                    if !*a {
                        return false;
                    }
                    *a = false;
                }
                FaultAction::ThrottleStart(k) => {
                    let a = active(&mut throttled, k);
                    if *a {
                        return false;
                    }
                    *a = true;
                }
                FaultAction::ThrottleEnd(k) => {
                    let a = active(&mut throttled, k);
                    if !*a {
                        return false;
                    }
                    *a = false;
                }
            }
        }
        true
    }
}

/// How a Byzantine peer misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineBehaviour {
    /// Serves payloads whose bytes were flipped after the checksum was
    /// stamped — structurally valid frames carrying garbage.
    ServeCorrupt,
    /// Proposes ids that do not (and will never) exist, trying to waste
    /// honest request budgets and bloat per-window bookkeeping.
    ProposeGarbage,
    /// Accepts requests and silently never serves them, starving the
    /// requester until its retransmission timer fires.
    EatRequests,
}

/// Static, start-of-run attributes of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    /// Upload-cap override from a bandwidth class (`None` = the scenario's
    /// uniform default applies; `Some(cap)` replaces it, where the inner
    /// `Option` distinguishes a finite cap from "explicitly uncapped").
    pub cap_bps: Option<Option<u64>>,
    /// Free-riders request and receive but never propose or serve.
    pub free_rider: bool,
    /// `Some(t)` for flash-crowd joiners: the node does not exist before
    /// `t` (its [`FaultAction::Join`] event is also on the timeline).
    pub join_at: Option<Time>,
    /// `Some(behaviour)` for Byzantine peers (never the source).
    pub byzantine: Option<ByzantineBehaviour>,
}

impl NodeProfile {
    /// Resolves this node's upload cap against the deployment's uniform
    /// default: a bandwidth-class override wins, otherwise `uniform`
    /// applies. Every runtime resolves caps through this one function so
    /// the same spec can never yield different caps on different hosts.
    /// (Source provisioning — `source_uncapped` — is the caller's
    /// decision; it applies before the profile is consulted.)
    pub fn resolve_cap(&self, uniform: Option<u64>) -> Option<u64> {
        match self.cap_bps {
            Some(class_cap) => class_cap,
            None => uniform,
        }
    }
}

/// One compiled partition: the cell each node belongs to while the
/// partition is active.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionCells {
    /// `cells[node] = cell index` (`total_n` entries; cross-cell traffic
    /// is dropped while active).
    pub cells: Vec<u8>,
}

/// One compiled throttle: the victims and the rate they are throttled to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThrottlePlan {
    /// The throttled upload cap in bits/s (`None` = uncapped, a "boost").
    pub cap_bps: Option<u64>,
    /// The nodes whose upload links the throttle applies to.
    pub victims: Vec<NodeId>,
}

/// A fully compiled adversity plan for a concrete deployment size.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAdversity {
    /// Nodes present from the start (the scenario's `n`).
    pub base_n: usize,
    /// Base nodes plus flash-crowd joiners; every runtime must size its
    /// state for this many nodes.
    pub total_n: usize,
    /// The ordered fault schedule.
    pub timeline: FaultTimeline,
    /// Per-node static attributes, `total_n` entries.
    pub profiles: Vec<NodeProfile>,
    /// Cell maps referenced by [`FaultAction::Partition`]/[`FaultAction::Heal`].
    pub partitions: Vec<PartitionCells>,
    /// Throttle plans referenced by [`FaultAction::ThrottleStart`]/
    /// [`FaultAction::ThrottleEnd`].
    pub throttles: Vec<ThrottlePlan>,
    /// Syscall-boundary fault injection plan for the reactor runtime
    /// (inert for the simulator and the thread-per-node runtime, which
    /// have no kernel I/O path to inject into).
    pub chaos: ChaosPlan,
}

impl CompiledAdversity {
    /// A no-adversity compilation: empty timeline, default profiles.
    pub fn inert(n: usize) -> Self {
        CompiledAdversity {
            base_n: n,
            total_n: n,
            timeline: FaultTimeline::default(),
            profiles: vec![NodeProfile::default(); n],
            partitions: Vec::new(),
            throttles: Vec::new(),
            chaos: ChaosPlan::none(),
        }
    }

    /// Whether this compilation changes nothing about a plain run.
    pub fn is_inert(&self) -> bool {
        self.total_n == self.base_n
            && self.timeline.is_empty()
            && self.profiles.iter().all(|p| *p == NodeProfile::default())
            && self.partitions.is_empty()
            && self.throttles.is_empty()
            && self.chaos.is_none()
    }

    /// The earliest crash time of each node, for runtimes that only
    /// support one-shot crashes (the thread-per-node deployment).
    pub fn first_crash_of(&self, node: NodeId) -> Option<Time> {
        self.timeline.events().iter().find(|e| e.action == FaultAction::Crash(node)).map(|e| e.at)
    }

    /// Structural soundness beyond [`FaultTimeline::is_order_sound`]:
    /// every partition/throttle index resolves, cell maps and victim sets
    /// are sized for the population, and Byzantine assignment never names
    /// the source.
    pub fn is_sound(&self) -> bool {
        self.timeline.is_order_sound(self.total_n)
            && self.timeline.events().iter().all(|e| match e.action {
                FaultAction::Partition(k) | FaultAction::Heal(k) => {
                    (k as usize) < self.partitions.len()
                }
                FaultAction::ThrottleStart(k) | FaultAction::ThrottleEnd(k) => {
                    (k as usize) < self.throttles.len()
                }
                _ => true,
            })
            && self.partitions.iter().all(|p| p.cells.len() == self.total_n)
            && self.throttles.iter().all(|t| t.victims.iter().all(|v| v.index() < self.total_n))
            && self.profiles.first().is_none_or(|p| p.byzantine.is_none())
    }
}

/// Runtime partition tracker shared by all three runtimes.
///
/// Feed it every fired [`FaultAction`] (non-partition actions are ignored)
/// and ask [`PartitionState::allows`] before delivering a datagram: the
/// sim's link layer, the reactor's demux and the thread runtime's driver
/// all enforce the same cell maps through this one helper, so a partition
/// can never mean different things on different hosts.
#[derive(Debug, Clone, Default)]
pub struct PartitionState {
    /// Indices of currently active partitions.
    active: Vec<u32>,
}

impl PartitionState {
    /// A tracker with no active partitions.
    pub fn new() -> Self {
        PartitionState::default()
    }

    /// Applies one fired timeline action (ignores node-scoped and throttle
    /// actions).
    pub fn on_event(&mut self, action: FaultAction) {
        match action {
            FaultAction::Partition(k) if !self.active.contains(&k) => self.active.push(k),
            FaultAction::Heal(k) => self.active.retain(|&a| a != k),
            _ => {}
        }
    }

    /// Whether any partition is currently active.
    pub fn is_split(&self) -> bool {
        !self.active.is_empty()
    }

    /// Whether traffic from `a` to `b` is currently allowed: every active
    /// partition must place both endpoints in the same cell.
    pub fn allows(&self, compiled: &CompiledAdversity, a: NodeId, b: NodeId) -> bool {
        self.active.iter().all(|&k| {
            let cells = &compiled.partitions[k as usize].cells;
            match (cells.get(a.index()), cells.get(b.index())) {
                (Some(ca), Some(cb)) => ca == cb,
                // Nodes outside the cell map (never compiled) are not cut off.
                _ => true,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, action: FaultAction) -> FaultEvent {
        FaultEvent { at: Time::from_secs(at_s), action }
    }

    #[test]
    fn order_soundness_accepts_crash_rejoin_cycles() {
        let t = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(3))),
            ev(2, FaultAction::Rejoin(NodeId::new(3))),
            ev(4, FaultAction::Crash(NodeId::new(3))),
            ev(5, FaultAction::Join(NodeId::new(9))),
            ev(6, FaultAction::Crash(NodeId::new(9))),
        ]);
        assert!(t.is_order_sound(10));
        assert_eq!(t.dead_at(Time::from_secs(3)), vec![]);
        assert_eq!(t.dead_at(Time::from_secs(10)), vec![NodeId::new(3), NodeId::new(9)]);
    }

    #[test]
    fn order_soundness_rejects_double_crash_and_unsorted() {
        let double = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(3))),
            ev(2, FaultAction::Crash(NodeId::new(3))),
        ]);
        assert!(!double.is_order_sound(10));
        let unsorted = FaultTimeline::new(vec![
            ev(2, FaultAction::Crash(NodeId::new(3))),
            ev(1, FaultAction::Crash(NodeId::new(4))),
        ]);
        assert!(!unsorted.is_order_sound(10));
        let early_crash = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(9))),
            ev(2, FaultAction::Join(NodeId::new(9))),
        ]);
        assert!(!early_crash.is_order_sound(10));
        let out_of_range = FaultTimeline::new(vec![ev(1, FaultAction::Crash(NodeId::new(10)))]);
        assert!(!out_of_range.is_order_sound(10));
    }

    #[test]
    fn order_soundness_pairs_partitions_and_throttles() {
        let good = FaultTimeline::new(vec![
            ev(1, FaultAction::Partition(0)),
            ev(2, FaultAction::ThrottleStart(0)),
            ev(3, FaultAction::Heal(0)),
            ev(4, FaultAction::ThrottleEnd(0)),
            ev(5, FaultAction::Partition(0)), // a healed index may split again
            ev(6, FaultAction::Heal(0)),
        ]);
        assert!(good.is_order_sound(10));
        let orphan_heal = FaultTimeline::new(vec![ev(1, FaultAction::Heal(0))]);
        assert!(!orphan_heal.is_order_sound(10));
        let double_split = FaultTimeline::new(vec![
            ev(1, FaultAction::Partition(2)),
            ev(2, FaultAction::Partition(2)),
        ]);
        assert!(!double_split.is_order_sound(10));
        let orphan_end = FaultTimeline::new(vec![ev(1, FaultAction::ThrottleEnd(1))]);
        assert!(!orphan_end.is_order_sound(10));
        let overlapping_class = FaultTimeline::new(vec![
            ev(1, FaultAction::ThrottleStart(0)),
            ev(2, FaultAction::ThrottleStart(0)),
        ]);
        assert!(!overlapping_class.is_order_sound(10));
    }

    #[test]
    fn inert_compilation_is_inert() {
        let c = CompiledAdversity::inert(20);
        assert!(c.is_inert());
        assert!(c.is_sound());
        assert_eq!(c.total_n, 20);
        assert_eq!(c.first_crash_of(NodeId::new(3)), None);
    }

    #[test]
    fn partition_state_tracks_cells() {
        let mut c = CompiledAdversity::inert(4);
        c.partitions.push(PartitionCells { cells: vec![0, 0, 1, 1] });
        let mut p = PartitionState::new();
        let (a, b, d) = (NodeId::new(0), NodeId::new(1), NodeId::new(3));
        assert!(p.allows(&c, a, d), "no partition: everything flows");
        p.on_event(FaultAction::Partition(0));
        assert!(p.is_split());
        assert!(p.allows(&c, a, b), "same cell");
        assert!(!p.allows(&c, a, d), "cross cell is cut");
        p.on_event(FaultAction::Crash(a)); // ignored
        assert!(p.is_split());
        p.on_event(FaultAction::Heal(0));
        assert!(!p.is_split());
        assert!(p.allows(&c, a, d), "healed");
    }

    #[test]
    fn compiled_soundness_rejects_bad_indices_and_byzantine_source() {
        let mut c = CompiledAdversity::inert(4);
        c.timeline = FaultTimeline::new(vec![ev(1, FaultAction::Partition(0))]);
        assert!(!c.is_sound(), "partition index without a cell map");
        c.partitions.push(PartitionCells { cells: vec![0, 0, 1, 1] });
        assert!(c.is_sound());
        c.profiles[0].byzantine = Some(ByzantineBehaviour::ServeCorrupt);
        assert!(!c.is_sound(), "the source must never be Byzantine");
    }
}
