//! The compiled form of an adversity spec: typed fault events on a shared
//! timeline, plus static per-node profiles.

use gossip_types::{NodeId, Time};

/// What happens to one node at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The node crashes: it loses all protocol state, stops sending and
    /// drops everything addressed to it.
    Crash(NodeId),
    /// A previously crashed node comes back with *fresh* protocol state
    /// (a crash loses state; only the stream player's history of what it
    /// already watched survives, because the viewer did watch it).
    Rejoin(NodeId),
    /// A brand-new node (id ≥ the base population) boots mid-run and
    /// starts participating from nothing.
    Join(NodeId),
}

impl FaultAction {
    /// The node the action applies to.
    pub fn node(self) -> NodeId {
        match self {
            FaultAction::Crash(n) | FaultAction::Rejoin(n) | FaultAction::Join(n) => n,
        }
    }
}

/// One timed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires (offset from the run's start, `Time::ZERO`).
    pub at: Time,
    /// What happens.
    pub action: FaultAction,
}

/// The ordered fault schedule of one run.
///
/// Events are sorted by `(time, compilation order)`; ties at the same
/// instant apply in list order. The compiler guarantees *order-soundness*
/// (checked by [`FaultTimeline::is_order_sound`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// Wraps a pre-ordered event list (the compiler's output).
    pub(crate) fn new(events: Vec<FaultEvent>) -> Self {
        FaultTimeline { events }
    }

    /// The events, ordered by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every node that is crashed at `horizon` (crashed without a later
    /// rejoin before the horizon).
    pub fn dead_at(&self, horizon: Time) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = Vec::new();
        for ev in &self.events {
            if ev.at > horizon {
                break;
            }
            match ev.action {
                FaultAction::Crash(n) => dead.push(n),
                FaultAction::Rejoin(n) => dead.retain(|&d| d != n),
                FaultAction::Join(_) => {}
            }
        }
        dead.sort_unstable();
        dead
    }

    /// Checks the structural invariants given a total population of
    /// `total_n` nodes (base plus joiners):
    ///
    /// * events are sorted by time;
    /// * no node crashes twice without an intervening rejoin;
    /// * no node rejoins unless currently crashed;
    /// * no node joins twice, and joiners never crash before joining.
    pub fn is_order_sound(&self, total_n: usize) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum S {
            NeverJoined,
            Alive,
            Dead,
        }
        // Ids outside 0..total_n are unconditionally unsound.
        if self.events.iter().any(|e| e.action.node().index() >= total_n) {
            return false;
        }
        let mut state = vec![S::Alive; total_n];
        for e in &self.events {
            if let FaultAction::Join(n) = e.action {
                state[n.index()] = S::NeverJoined;
            }
        }
        let mut last = Time::ZERO;
        for e in &self.events {
            if e.at < last {
                return false;
            }
            last = e.at;
            let s = &mut state[e.action.node().index()];
            match e.action {
                FaultAction::Crash(_) if *s == S::Alive => *s = S::Dead,
                FaultAction::Rejoin(_) if *s == S::Dead => *s = S::Alive,
                FaultAction::Join(_) if *s == S::NeverJoined => *s = S::Alive,
                _ => return false,
            }
        }
        true
    }
}

/// Static, start-of-run attributes of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    /// Upload-cap override from a bandwidth class (`None` = the scenario's
    /// uniform default applies; `Some(cap)` replaces it, where the inner
    /// `Option` distinguishes a finite cap from "explicitly uncapped").
    pub cap_bps: Option<Option<u64>>,
    /// Free-riders request and receive but never propose or serve.
    pub free_rider: bool,
    /// `Some(t)` for flash-crowd joiners: the node does not exist before
    /// `t` (its [`FaultAction::Join`] event is also on the timeline).
    pub join_at: Option<Time>,
}

impl NodeProfile {
    /// Resolves this node's upload cap against the deployment's uniform
    /// default: a bandwidth-class override wins, otherwise `uniform`
    /// applies. Every runtime resolves caps through this one function so
    /// the same spec can never yield different caps on different hosts.
    /// (Source provisioning — `source_uncapped` — is the caller's
    /// decision; it applies before the profile is consulted.)
    pub fn resolve_cap(&self, uniform: Option<u64>) -> Option<u64> {
        match self.cap_bps {
            Some(class_cap) => class_cap,
            None => uniform,
        }
    }
}

/// A fully compiled adversity plan for a concrete deployment size.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAdversity {
    /// Nodes present from the start (the scenario's `n`).
    pub base_n: usize,
    /// Base nodes plus flash-crowd joiners; every runtime must size its
    /// state for this many nodes.
    pub total_n: usize,
    /// The ordered fault schedule.
    pub timeline: FaultTimeline,
    /// Per-node static attributes, `total_n` entries.
    pub profiles: Vec<NodeProfile>,
}

impl CompiledAdversity {
    /// A no-adversity compilation: empty timeline, default profiles.
    pub fn inert(n: usize) -> Self {
        CompiledAdversity {
            base_n: n,
            total_n: n,
            timeline: FaultTimeline::default(),
            profiles: vec![NodeProfile::default(); n],
        }
    }

    /// Whether this compilation changes nothing about a plain run.
    pub fn is_inert(&self) -> bool {
        self.total_n == self.base_n
            && self.timeline.is_empty()
            && self.profiles.iter().all(|p| *p == NodeProfile::default())
    }

    /// The earliest crash time of each node, for runtimes that only
    /// support one-shot crashes (the thread-per-node deployment).
    pub fn first_crash_of(&self, node: NodeId) -> Option<Time> {
        self.timeline.events().iter().find(|e| e.action == FaultAction::Crash(node)).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_s: u64, action: FaultAction) -> FaultEvent {
        FaultEvent { at: Time::from_secs(at_s), action }
    }

    #[test]
    fn order_soundness_accepts_crash_rejoin_cycles() {
        let t = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(3))),
            ev(2, FaultAction::Rejoin(NodeId::new(3))),
            ev(4, FaultAction::Crash(NodeId::new(3))),
            ev(5, FaultAction::Join(NodeId::new(9))),
            ev(6, FaultAction::Crash(NodeId::new(9))),
        ]);
        assert!(t.is_order_sound(10));
        assert_eq!(t.dead_at(Time::from_secs(3)), vec![]);
        assert_eq!(t.dead_at(Time::from_secs(10)), vec![NodeId::new(3), NodeId::new(9)]);
    }

    #[test]
    fn order_soundness_rejects_double_crash_and_unsorted() {
        let double = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(3))),
            ev(2, FaultAction::Crash(NodeId::new(3))),
        ]);
        assert!(!double.is_order_sound(10));
        let unsorted = FaultTimeline::new(vec![
            ev(2, FaultAction::Crash(NodeId::new(3))),
            ev(1, FaultAction::Crash(NodeId::new(4))),
        ]);
        assert!(!unsorted.is_order_sound(10));
        let early_crash = FaultTimeline::new(vec![
            ev(1, FaultAction::Crash(NodeId::new(9))),
            ev(2, FaultAction::Join(NodeId::new(9))),
        ]);
        assert!(!early_crash.is_order_sound(10));
        let out_of_range = FaultTimeline::new(vec![ev(1, FaultAction::Crash(NodeId::new(10)))]);
        assert!(!out_of_range.is_order_sound(10));
    }

    #[test]
    fn inert_compilation_is_inert() {
        let c = CompiledAdversity::inert(20);
        assert!(c.is_inert());
        assert_eq!(c.total_n, 20);
        assert_eq!(c.first_crash_of(NodeId::new(3)), None);
    }
}
