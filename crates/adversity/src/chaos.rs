//! Syscall-boundary fault injection ("chaos net"): the declarative spec
//! and its compiled plan.
//!
//! PRs 5 and 7 gave every runtime *protocol-level* adversity — crashes,
//! churn, Byzantine peers, partitions, throttles. This module extends the
//! same declarative spec down one layer: deterministic faults at the
//! kernel I/O boundary of the reactor runtime. A [`ChaosSpec`] describes
//! per-datagram mutations (drop / duplicate / reorder / delay / truncate)
//! and errno faults (EAGAIN storms, EINTR, short `sendmmsg` counts, a
//! timed ENOBUFS burst, a one-shot socket kill, a mid-run ENOSYS that
//! forces the batched backend to downgrade). Compiling the spec yields a
//! [`ChaosPlan`]: the same knobs plus a derived RNG seed, so the injected
//! fault sequence is a pure function of `(spec, seed)` and — deliberately —
//! independent of how many shards the reactor happens to run.
//!
//! Like every other fault process in this crate, the chaos stream is
//! split from a dedicated tag ([`ChaosPlan::seed`] comes off its own
//! stream), so adding a `[chaos]` section to a spec never perturbs the
//! protocol-fault compilation, and an empty section compiles to
//! [`ChaosPlan::none`] — byte-identical behaviour to a run that never
//! heard of chaos.

use gossip_sim::DetRng;
use gossip_types::{Duration, Time};

/// RNG stream tag for the chaos seed derivation: independent of the
/// compile stream and every runtime stream, so kernel-fault injection
/// never perturbs protocol-level draws.
const CHAOS_STREAM: u64 = 0xC4A0_5EED;

/// Declarative syscall-boundary fault description (the `[chaos]` section).
///
/// All probabilities are per-datagram (or per-syscall for the errno
/// faults) and must lie within `[0, 1]`; the timed faults are offsets
/// from the start of the run. The default (all zeros, no timed faults)
/// injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosSpec {
    /// Probability that an outgoing datagram is silently dropped.
    pub drop: f64,
    /// Probability that an outgoing datagram is sent twice.
    pub duplicate: f64,
    /// Probability that an outgoing datagram swaps places with its
    /// successor in the same flush batch.
    pub reorder: f64,
    /// Probability that an outgoing datagram is held back and re-injected
    /// on a later flush of the same socket.
    pub delay: f64,
    /// Probability that an outgoing datagram is truncated to a prefix
    /// (exercising the demux salvage path on the receiver).
    pub truncate: f64,
    /// Probability that a send syscall fails with `EAGAIN` (transient).
    pub eagain: f64,
    /// Probability that a send syscall fails with `EINTR` (transient).
    pub eintr: f64,
    /// Probability that a batched send reports fewer datagrams accepted
    /// than were queued (a short `sendmmsg` count).
    pub short_send: f64,
    /// `Some(t)`: every send between `t` and `t + enobufs_for` fails with
    /// `ENOBUFS` (a transient kernel buffer exhaustion burst).
    pub enobufs_at: Option<Duration>,
    /// Length of the ENOBUFS burst window (ignored unless `enobufs_at`
    /// is set).
    pub enobufs_for: Duration,
    /// `Some(t)`: one socket per shard dies fatally (`EBADF`) at `t`,
    /// forcing a re-bind.
    pub kill_socket_at: Option<Duration>,
    /// `Some(t)`: the first batched send at or after `t` fails with
    /// `ENOSYS`, forcing a downgrade to the fallback backend.
    pub enosys_at: Option<Duration>,
}

impl ChaosSpec {
    /// The empty chaos spec: compiling it injects nothing.
    pub fn none() -> Self {
        ChaosSpec::default()
    }

    /// Whether this spec describes any chaos at all.
    pub fn is_none(&self) -> bool {
        *self == ChaosSpec::default()
    }

    /// Panics unless every probability lies within `[0, 1]` (used by the
    /// builder; the TOML loader reports errors instead).
    pub(crate) fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
            ("delay", self.delay),
            ("truncate", self.truncate),
            ("eagain", self.eagain),
            ("eintr", self.eintr),
            ("short_send", self.short_send),
        ] {
            assert!((0.0..=1.0).contains(&p), "chaos {name} must be within [0, 1]");
        }
    }

    /// Compiles the spec against the run seed.
    ///
    /// The returned plan is a pure function of `(spec, seed)`: the chaos
    /// seed comes off a dedicated RNG stream, so it is independent of
    /// every protocol-level draw and of the deployment size — which is
    /// what lets the reactor prove the injected fault sequence identical
    /// at any shard count.
    pub fn compile(&self, seed: u64) -> ChaosPlan {
        if self.is_none() {
            return ChaosPlan::none();
        }
        ChaosPlan {
            drop: self.drop,
            duplicate: self.duplicate,
            reorder: self.reorder,
            delay: self.delay,
            truncate: self.truncate,
            eagain: self.eagain,
            eintr: self.eintr,
            short_send: self.short_send,
            enobufs: self
                .enobufs_at
                .map(|at| (Time::ZERO + at, Time::ZERO + at + self.enobufs_for)),
            kill_socket_at: self.kill_socket_at.map(|at| Time::ZERO + at),
            enosys_at: self.enosys_at.map(|at| Time::ZERO + at),
            seed: DetRng::seed_from(seed).split(CHAOS_STREAM).next_u64(),
        }
    }
}

/// The compiled form of a [`ChaosSpec`]: the same knobs resolved to
/// absolute instants, plus the derived seed for the injection RNG.
///
/// The reactor's chaos engine splits per-socket streams off `seed`, so
/// two runs with the same `(spec, seed)` inject byte-identical fault
/// sequences regardless of shard count or wall-clock scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChaosPlan {
    /// Per-datagram drop probability.
    pub drop: f64,
    /// Per-datagram duplication probability.
    pub duplicate: f64,
    /// Per-datagram adjacent-swap probability.
    pub reorder: f64,
    /// Per-datagram delay probability.
    pub delay: f64,
    /// Per-datagram truncation probability.
    pub truncate: f64,
    /// Per-syscall EAGAIN probability.
    pub eagain: f64,
    /// Per-syscall EINTR probability.
    pub eintr: f64,
    /// Per-syscall short-send probability.
    pub short_send: f64,
    /// Active ENOBUFS window `[start, end)`, if any.
    pub enobufs: Option<(Time, Time)>,
    /// When one socket per shard dies fatally, if ever.
    pub kill_socket_at: Option<Time>,
    /// When the batched backend is forced to downgrade, if ever.
    pub enosys_at: Option<Time>,
    /// Seed of the injection RNG (derived from the run seed on the
    /// dedicated chaos stream).
    pub seed: u64,
}

impl ChaosPlan {
    /// The inert plan: injects nothing.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        *self == ChaosPlan::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_compiles_to_the_inert_plan() {
        let plan = ChaosSpec::none().compile(42);
        assert!(plan.is_none());
        assert_eq!(plan, ChaosPlan::none());
    }

    #[test]
    fn compile_is_deterministic_and_seed_sensitive() {
        let spec = ChaosSpec { drop: 0.1, duplicate: 0.05, ..ChaosSpec::default() };
        assert_eq!(spec.compile(7), spec.compile(7));
        assert_ne!(spec.compile(7).seed, spec.compile(8).seed);
    }

    #[test]
    fn timed_faults_resolve_to_absolute_instants() {
        let spec = ChaosSpec {
            enobufs_at: Some(Duration::from_secs(2)),
            enobufs_for: Duration::from_secs(1),
            kill_socket_at: Some(Duration::from_secs(3)),
            enosys_at: Some(Duration::from_millis(500)),
            ..ChaosSpec::default()
        };
        let plan = spec.compile(1);
        assert_eq!(plan.enobufs, Some((Time::from_secs(2), Time::from_secs(3))));
        assert_eq!(plan.kill_socket_at, Some(Time::from_secs(3)));
        assert_eq!(plan.enosys_at, Some(Time::from_millis(500)));
        assert!(!plan.is_none());
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn absurd_probability_is_rejected() {
        ChaosSpec { drop: 1.5, ..ChaosSpec::default() }.validate();
    }
}
