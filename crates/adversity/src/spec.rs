//! The declarative adversity description and its deterministic compiler.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gossip_sim::DetRng;
use gossip_types::{Duration, NodeId, Time};

use crate::chaos::ChaosSpec;
use crate::timeline::{
    ByzantineBehaviour, CompiledAdversity, FaultAction, FaultEvent, FaultTimeline, NodeProfile,
    PartitionCells, ThrottlePlan,
};

/// RNG stream tag for spec compilation: independent of every stream the
/// runtimes draw from, so adding adversity never perturbs a run's other
/// randomness (and an empty spec draws nothing at all).
const COMPILE_STREAM: u64 = 0xADF0_17ED;

/// The paper's Figure 7/8 scenario: a random fraction of the nodes crash
/// simultaneously.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Catastrophic {
    /// When the crash happens (offset from the start of the run).
    pub at: Duration,
    /// Fraction of the base population that fails (`0..=1`); the source
    /// (node 0) is always protected.
    pub fraction: f64,
}

/// Continuous Poisson leave/rejoin churn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonChurn {
    /// Churn window start.
    pub start: Duration,
    /// Churn window end (arrivals after this are not generated).
    pub end: Duration,
    /// Mean leave rate over the whole population, in departures per second.
    pub leaves_per_sec: f64,
    /// Mean time a departed node stays away before rejoining with fresh
    /// state (exponentially distributed); `None` = departures are final.
    pub mean_downtime: Option<Duration>,
}

/// A wave of brand-new nodes bootstrapping mid-stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the first newcomer arrives.
    pub at: Duration,
    /// How many new nodes join (ids `n..n+count`).
    pub count: usize,
    /// The joins are spread evenly across this window (a literal
    /// same-instant stampede is `Duration::ZERO`).
    pub spread: Duration,
}

/// One upload-capacity class of the heterogeneity extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthClass {
    /// Fraction of the population in this class (fractions should sum
    /// to ~1; the last class absorbs rounding).
    pub fraction: f64,
    /// The class upload cap in bits/s (`None` = uncapped).
    pub cap_bps: Option<u64>,
}

/// The relative weights of the three Byzantine behaviours within the
/// misbehaving population (normalised at compile time; all-zero weights
/// default to pure serve-corruptors).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantineMix {
    /// Weight of [`ByzantineBehaviour::ServeCorrupt`] peers.
    pub serve_corrupt: f64,
    /// Weight of [`ByzantineBehaviour::ProposeGarbage`] peers.
    pub propose_garbage: f64,
    /// Weight of [`ByzantineBehaviour::EatRequests`] peers.
    pub eat_requests: f64,
}

impl ByzantineMix {
    /// Pure serve-corruptors — the mix the paper-style quality experiments
    /// care about most, and the default when no weights are given.
    pub fn serve_corruptors() -> Self {
        ByzantineMix { serve_corrupt: 1.0, propose_garbage: 0.0, eat_requests: 0.0 }
    }
}

/// A fraction of the base receivers that misbehaves (never the source).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzantinePeers {
    /// Fraction of the base receivers that are Byzantine (`0..=1`).
    pub fraction: f64,
    /// How the misbehaving population splits across behaviours.
    pub mix: ByzantineMix,
}

/// One scheduled partition: the membership splits into `cells` named cells
/// at `at` and heals at `heal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionSpec {
    /// When the split happens.
    pub at: Duration,
    /// When cross-cell traffic flows again (must be after `at`).
    pub heal: Duration,
    /// How many cells the population splits into (≥ 2; cell membership is
    /// drawn at compile time, the source lands in cell 0).
    pub cells: usize,
}

/// One scheduled throttle: a fraction of receivers has its upload cap
/// forced to `cap_bps` between `start` and `end`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleSpec {
    /// When the throttle engages.
    pub start: Duration,
    /// When the original caps are restored (must be after `start`).
    pub end: Duration,
    /// Fraction of the base receivers affected (`0..=1`; never the source).
    pub fraction: f64,
    /// The throttled upload cap in bits/s (`None` = uncapped — a "boost").
    pub cap_bps: Option<u64>,
}

/// A declarative, composable fault & workload description.
///
/// Build one with the `with_*` methods (or load it from TOML), then
/// [`AdversitySpec::compile`] it for a concrete deployment size and seed.
/// All sampling happens at compile time on a dedicated RNG stream, so the
/// same `(spec, n, seed)` always yields the identical timeline and an
/// empty spec perturbs nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdversitySpec {
    /// One-shot catastrophic crash (Figures 7–8).
    pub catastrophic: Option<Catastrophic>,
    /// Continuous Poisson leave/rejoin churn.
    pub churn: Option<PoissonChurn>,
    /// Flash-crowd join wave of new nodes.
    pub flash_crowd: Option<FlashCrowd>,
    /// Fraction of base receivers that free-ride (request but never
    /// propose or serve).
    pub free_rider_fraction: Option<f64>,
    /// Upload-capacity classes (empty = the scenario's uniform cap).
    pub bandwidth_classes: Vec<BandwidthClass>,
    /// Explicitly scheduled crashes `(at, victims)` — the compatibility
    /// form of the old `ChurnPlan`, and an escape hatch for scripted
    /// scenarios with hand-picked victims. Unlike the random fault
    /// processes (which always protect the source), hand-picked victims
    /// are honoured verbatim — naming node 0 here deliberately kills the
    /// source.
    pub explicit_crashes: Vec<(Duration, Vec<NodeId>)>,
    /// Byzantine peers: a fraction of the base receivers that corrupts
    /// serves, proposes garbage ids or eats requests.
    pub byzantine: Option<ByzantinePeers>,
    /// Scheduled partition/heal intervals.
    pub partitions: Vec<PartitionSpec>,
    /// Scheduled time-varying bandwidth throttles.
    pub throttles: Vec<ThrottleSpec>,
    /// Syscall-boundary fault injection for the reactor runtime (drop /
    /// duplicate / reorder / delay / truncate plus errno faults). The
    /// default injects nothing.
    pub chaos: ChaosSpec,
}

impl AdversitySpec {
    /// The empty spec: compiling it is a no-op.
    pub fn none() -> Self {
        AdversitySpec::default()
    }

    /// Whether this spec describes any adversity at all.
    pub fn is_none(&self) -> bool {
        *self == AdversitySpec::default()
    }

    /// Adds the paper's catastrophic crash (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn with_catastrophic(mut self, at: Duration, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be within [0, 1]");
        self.catastrophic = Some(Catastrophic { at, fraction });
        self
    }

    /// Adds Poisson leave/rejoin churn (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the window is inverted or the rate is not positive and
    /// finite.
    pub fn with_poisson_churn(
        mut self,
        start: Duration,
        end: Duration,
        leaves_per_sec: f64,
        mean_downtime: Option<Duration>,
    ) -> Self {
        assert!(start <= end, "churn window must not be inverted");
        assert!(
            leaves_per_sec > 0.0 && leaves_per_sec.is_finite(),
            "leave rate must be positive and finite"
        );
        self.churn = Some(PoissonChurn { start, end, leaves_per_sec, mean_downtime });
        self
    }

    /// Adds a flash-crowd join wave (builder-style).
    pub fn with_flash_crowd(mut self, at: Duration, count: usize, spread: Duration) -> Self {
        self.flash_crowd = Some(FlashCrowd { at, count, spread });
        self
    }

    /// Sets the free-rider fraction (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn with_free_riders(mut self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be within [0, 1]");
        self.free_rider_fraction = Some(fraction);
        self
    }

    /// Sets the upload-capacity classes (builder-style).
    pub fn with_bandwidth_classes(mut self, classes: Vec<BandwidthClass>) -> Self {
        self.bandwidth_classes = classes;
        self
    }

    /// Schedules an explicit crash of hand-picked victims (builder-style).
    pub fn with_explicit_crash(mut self, at: Duration, victims: Vec<NodeId>) -> Self {
        self.explicit_crashes.push((at, victims));
        self
    }

    /// Makes a fraction of the base receivers Byzantine (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or any mix weight is
    /// negative or non-finite.
    pub fn with_byzantine(mut self, fraction: f64, mix: ByzantineMix) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be within [0, 1]");
        for w in [mix.serve_corrupt, mix.propose_garbage, mix.eat_requests] {
            assert!(w >= 0.0 && w.is_finite(), "mix weights must be non-negative and finite");
        }
        self.byzantine = Some(ByzantinePeers { fraction, mix });
        self
    }

    /// Schedules a partition/heal interval (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or inverted, or `cells < 2`.
    pub fn with_partition(mut self, at: Duration, heal: Duration, cells: usize) -> Self {
        assert!(at < heal, "a partition must heal strictly after it splits");
        assert!(cells >= 2, "a partition needs at least two cells");
        self.partitions.push(PartitionSpec { at, heal, cells });
        self
    }

    /// Schedules a time-varying bandwidth throttle (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if the interval is empty or inverted, or `fraction` is
    /// outside `[0, 1]`.
    pub fn with_throttle(
        mut self,
        start: Duration,
        end: Duration,
        fraction: f64,
        cap_bps: Option<u64>,
    ) -> Self {
        assert!(start < end, "a throttle must end strictly after it starts");
        assert!((0.0..=1.0).contains(&fraction), "fraction must be within [0, 1]");
        self.throttles.push(ThrottleSpec { start, end, fraction, cap_bps });
        self
    }

    /// Sets the syscall-boundary chaos description (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if any probability is not within `[0, 1]`.
    pub fn with_chaos(mut self, chaos: ChaosSpec) -> Self {
        chaos.validate();
        self.chaos = chaos;
        self
    }

    /// Compiles the spec for a base population of `n` nodes under the
    /// given seed.
    ///
    /// Compilation walks every fault process in one chronological pass
    /// (a time-ordered worklist), resolving victims against the population
    /// state *at that instant* — which is what makes the output
    /// order-sound by construction: only currently-alive nodes can crash,
    /// only crashed nodes rejoin, joiners exist only after their join.
    /// Everything derives from `DetRng::seed_from(seed)` on a dedicated
    /// stream, so the result is a pure function of `(spec, n, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (a deployment needs a source and a receiver).
    pub fn compile(&self, n: usize, seed: u64) -> CompiledAdversity {
        assert!(n >= 2, "a deployment needs a source and at least one receiver");
        if self.is_none() {
            return CompiledAdversity::inert(n);
        }
        let mut rng = DetRng::seed_from(seed).split(COMPILE_STREAM);
        let joiners = self.flash_crowd.map_or(0, |fc| fc.count);
        let total_n = n + joiners;
        let mut profiles = vec![NodeProfile::default(); total_n];

        // --- static profiles ------------------------------------------------
        // Bandwidth classes: counts per class over the whole population,
        // shuffled so class membership does not correlate with node ids.
        // Node 0 keeps the scenario default (the provisioned source).
        if !self.bandwidth_classes.is_empty() {
            let mut caps: Vec<Option<u64>> = Vec::with_capacity(total_n);
            for class in &self.bandwidth_classes {
                let count = (class.fraction * total_n as f64).round() as usize;
                caps.extend(std::iter::repeat_n(class.cap_bps, count));
            }
            let last = self.bandwidth_classes.last().expect("non-empty").cap_bps;
            caps.resize(total_n, last);
            rng.shuffle(&mut caps);
            for (i, cap) in caps.into_iter().enumerate().skip(1) {
                profiles[i].cap_bps = Some(cap);
            }
        }
        // Free-riders: a fraction of the base receivers (never the source,
        // never the joiners — newcomers that contribute nothing would
        // conflate two effects in every experiment).
        if let Some(fraction) = self.free_rider_fraction {
            let receivers = n - 1;
            let count = ((fraction * receivers as f64).round() as usize).min(receivers);
            for i in rng.sample_indices(receivers, count) {
                profiles[i + 1].free_rider = true;
            }
        }
        // Byzantine peers: a fraction of the base receivers (never the
        // source, never the joiners — same rationale as free riders), each
        // assigned one behaviour by the mix weights.
        if let Some(byz) = self.byzantine {
            let receivers = n - 1;
            let count = ((byz.fraction * receivers as f64).round() as usize).min(receivers);
            let weights = [byz.mix.serve_corrupt, byz.mix.propose_garbage, byz.mix.eat_requests];
            let total_weight: f64 = weights.iter().sum();
            for i in rng.sample_indices(receivers, count) {
                let behaviour = if total_weight <= 0.0 {
                    ByzantineBehaviour::ServeCorrupt
                } else {
                    // A uniform draw in [0, total): the behaviour whose
                    // cumulative weight bucket the draw lands in.
                    let draw = rng.next_below(u64::MAX) as f64 / u64::MAX as f64 * total_weight;
                    if draw < weights[0] {
                        ByzantineBehaviour::ServeCorrupt
                    } else if draw < weights[0] + weights[1] {
                        ByzantineBehaviour::ProposeGarbage
                    } else {
                        ByzantineBehaviour::EatRequests
                    }
                };
                profiles[i + 1].byzantine = Some(behaviour);
            }
        }
        // Partitions: a cell map per scheduled split, drawn once at compile
        // time so every runtime cuts the exact same edges. The source
        // always lands in cell 0 (a sourceless cell measures nothing but
        // its own starvation — re-convergence is the interesting metric).
        let partitions: Vec<PartitionCells> = self
            .partitions
            .iter()
            .map(|p| {
                let mut cells = vec![0u8; total_n];
                for cell in cells.iter_mut().skip(1) {
                    *cell = rng.index(p.cells) as u8;
                }
                PartitionCells { cells }
            })
            .collect();
        // Throttles: victim sets over the base receivers, never the source.
        let throttles: Vec<ThrottlePlan> = self
            .throttles
            .iter()
            .map(|t| {
                let receivers = n - 1;
                let count = ((t.fraction * receivers as f64).round() as usize).min(receivers);
                let mut victims: Vec<NodeId> = rng
                    .sample_indices(receivers, count)
                    .into_iter()
                    .map(|i| NodeId::new((i + 1) as u32))
                    .collect();
                victims.sort_unstable();
                ThrottlePlan { cap_bps: t.cap_bps, victims }
            })
            .collect();

        // --- the chronological worklist -------------------------------------
        #[derive(Debug, Clone, PartialEq, Eq)]
        enum Work {
            Explicit(usize),
            Catastrophic,
            ChurnArrival,
            Rejoin(NodeId),
            Join(NodeId),
            Network(FaultAction),
        }
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut payloads: Vec<Work> = Vec::new();
        let push = |heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                    payloads: &mut Vec<Work>,
                    at: Time,
                    work: Work| {
            let seq = payloads.len() as u64;
            payloads.push(work);
            heap.push(Reverse((at.as_micros(), seq)));
        };

        for (k, &(at, _)) in self.explicit_crashes.iter().enumerate() {
            push(&mut heap, &mut payloads, Time::ZERO + at, Work::Explicit(k));
        }
        if let Some(cat) = self.catastrophic {
            push(&mut heap, &mut payloads, Time::ZERO + cat.at, Work::Catastrophic);
        }
        if let Some(churn) = self.churn {
            // Pre-draw the Poisson arrival instants (victims are resolved
            // chronologically below, against the then-alive population).
            let mean_gap = 1.0 / churn.leaves_per_sec;
            let mut t = Time::ZERO + churn.start;
            let end = Time::ZERO + churn.end;
            loop {
                t += Duration::from_secs_f64(rng.exponential(mean_gap));
                if t > end {
                    break;
                }
                push(&mut heap, &mut payloads, t, Work::ChurnArrival);
            }
        }
        for (k, p) in self.partitions.iter().enumerate() {
            let k = k as u32;
            let split = Work::Network(FaultAction::Partition(k));
            push(&mut heap, &mut payloads, Time::ZERO + p.at, split);
            let heal = Work::Network(FaultAction::Heal(k));
            push(&mut heap, &mut payloads, Time::ZERO + p.heal, heal);
        }
        for (k, t) in self.throttles.iter().enumerate() {
            let k = k as u32;
            let start = Work::Network(FaultAction::ThrottleStart(k));
            push(&mut heap, &mut payloads, Time::ZERO + t.start, start);
            let end = Work::Network(FaultAction::ThrottleEnd(k));
            push(&mut heap, &mut payloads, Time::ZERO + t.end, end);
        }
        if let Some(fc) = self.flash_crowd {
            for j in 0..fc.count {
                let offset = if fc.count > 1 {
                    Duration::from_micros(fc.spread.as_micros() * j as u64 / (fc.count as u64 - 1))
                } else {
                    Duration::ZERO
                };
                push(
                    &mut heap,
                    &mut payloads,
                    Time::ZERO + fc.at + offset,
                    Work::Join(NodeId::new((n + j) as u32)),
                );
            }
        }

        // Walk the worklist in (time, seq) order, tracking liveness so
        // every emitted event is sound at its instant.
        let mut alive = vec![true; total_n];
        for p in &mut alive[n..] {
            *p = false; // joiners do not exist yet
        }
        let mut events: Vec<FaultEvent> = Vec::new();
        let mean_downtime = self.churn.and_then(|c| c.mean_downtime);
        let alive_receivers = |alive: &[bool]| -> Vec<NodeId> {
            (1..total_n).filter(|&i| alive[i]).map(|i| NodeId::new(i as u32)).collect()
        };
        while let Some(Reverse((at_us, seq))) = heap.pop() {
            let at = Time::from_micros(at_us);
            match payloads[seq as usize].clone() {
                Work::Explicit(k) => {
                    for &v in &self.explicit_crashes[k].1 {
                        if v.index() < total_n && alive[v.index()] {
                            alive[v.index()] = false;
                            events.push(FaultEvent { at, action: FaultAction::Crash(v) });
                        }
                    }
                }
                Work::Catastrophic => {
                    let candidates = alive_receivers(&alive);
                    let target = (self.catastrophic.expect("scheduled").fraction * n as f64).round()
                        as usize;
                    let count = target.min(candidates.len());
                    let mut victims: Vec<NodeId> = rng
                        .sample_indices(candidates.len(), count)
                        .into_iter()
                        .map(|i| candidates[i])
                        .collect();
                    victims.sort_unstable();
                    for v in victims {
                        alive[v.index()] = false;
                        events.push(FaultEvent { at, action: FaultAction::Crash(v) });
                    }
                }
                Work::ChurnArrival => {
                    let candidates = alive_receivers(&alive);
                    if candidates.is_empty() {
                        continue; // everyone is already down: the departure fizzles
                    }
                    let v = candidates[rng.index(candidates.len())];
                    alive[v.index()] = false;
                    events.push(FaultEvent { at, action: FaultAction::Crash(v) });
                    if let Some(mean) = mean_downtime {
                        let back = at
                            + Duration::from_secs_f64(
                                rng.exponential(mean.as_secs_f64().max(1e-6)),
                            );
                        push(&mut heap, &mut payloads, back, Work::Rejoin(v));
                    }
                }
                Work::Rejoin(v) => {
                    if !alive[v.index()] {
                        alive[v.index()] = true;
                        events.push(FaultEvent { at, action: FaultAction::Rejoin(v) });
                    }
                }
                Work::Join(v) => {
                    alive[v.index()] = true;
                    profiles[v.index()].join_at = Some(at);
                    events.push(FaultEvent { at, action: FaultAction::Join(v) });
                }
                Work::Network(action) => {
                    events.push(FaultEvent { at, action });
                }
            }
        }

        CompiledAdversity {
            base_n: n,
            total_n,
            timeline: FaultTimeline::new(events),
            profiles,
            partitions,
            throttles,
            // The chaos seed comes off its own stream (not `rng`), so a
            // `[chaos]` section never perturbs the protocol-fault draws.
            chaos: self.chaos.compile(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_compiles_inert_without_drawing() {
        let spec = AdversitySpec::none();
        assert!(spec.is_none());
        let c = spec.compile(50, 7);
        assert!(c.is_inert());
    }

    #[test]
    fn catastrophic_spares_the_source_and_hits_the_fraction() {
        for pct in [10u32, 20, 35, 50, 80] {
            let spec = AdversitySpec::none()
                .with_catastrophic(Duration::from_secs(30), f64::from(pct) / 100.0);
            let c = spec.compile(230, 1);
            let dead = c.timeline.dead_at(Time::MAX);
            assert_eq!(dead.len(), (230 * pct as usize + 50) / 100, "fraction {pct}%");
            assert!(!dead.contains(&NodeId::new(0)), "source must survive");
            assert!(c.timeline.is_order_sound(c.total_n));
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let spec = AdversitySpec::none()
            .with_catastrophic(Duration::from_secs(10), 0.5)
            .with_poisson_churn(
                Duration::from_secs(1),
                Duration::from_secs(40),
                0.8,
                Some(Duration::from_secs(5)),
            )
            .with_flash_crowd(Duration::from_secs(8), 7, Duration::from_secs(2))
            .with_free_riders(0.25)
            .with_bandwidth_classes(vec![
                BandwidthClass { fraction: 0.5, cap_bps: Some(700_000) },
                BandwidthClass { fraction: 0.5, cap_bps: Some(300_000) },
            ]);
        assert_eq!(spec.compile(64, 9), spec.compile(64, 9));
        assert_ne!(spec.compile(64, 9), spec.compile(64, 10));
    }

    #[test]
    fn poisson_churn_interleaves_crash_and_rejoin_soundly() {
        let spec = AdversitySpec::none().with_poisson_churn(
            Duration::ZERO,
            Duration::from_secs(120),
            2.0,
            Some(Duration::from_secs(3)),
        );
        let c = spec.compile(40, 3);
        assert!(c.timeline.len() > 50, "2/s over 120 s should generate many events");
        assert!(c.timeline.is_order_sound(c.total_n));
        assert!(c.timeline.events().iter().any(|e| matches!(e.action, FaultAction::Rejoin(_))));
    }

    #[test]
    fn permanent_churn_never_rejoins() {
        let spec = AdversitySpec::none().with_poisson_churn(
            Duration::ZERO,
            Duration::from_secs(60),
            0.5,
            None,
        );
        let c = spec.compile(30, 4);
        assert!(c.timeline.events().iter().all(|e| matches!(e.action, FaultAction::Crash(_))));
        assert!(c.timeline.is_order_sound(c.total_n));
    }

    #[test]
    fn flash_crowd_allocates_fresh_ids_and_profiles() {
        let spec = AdversitySpec::none().with_flash_crowd(
            Duration::from_secs(5),
            4,
            Duration::from_secs(3),
        );
        let c = spec.compile(10, 1);
        assert_eq!(c.total_n, 14);
        let joins: Vec<&FaultEvent> = c
            .timeline
            .events()
            .iter()
            .filter(|e| matches!(e.action, FaultAction::Join(_)))
            .collect();
        assert_eq!(joins.len(), 4);
        assert_eq!(joins[0].at, Time::from_secs(5));
        assert_eq!(joins[3].at, Time::from_secs(8), "spread covers the window");
        for j in 10..14 {
            assert!(c.profiles[j].join_at.is_some());
        }
        assert!(c.timeline.is_order_sound(c.total_n));
    }

    #[test]
    fn joiners_can_crash_after_joining_but_not_before() {
        let spec = AdversitySpec::none()
            .with_flash_crowd(Duration::from_secs(2), 6, Duration::ZERO)
            .with_poisson_churn(Duration::ZERO, Duration::from_secs(200), 1.0, None);
        let c = spec.compile(8, 11);
        assert!(c.timeline.is_order_sound(c.total_n));
        // A joiner crash, if any, must come after its join.
        for (i, e) in c.timeline.events().iter().enumerate() {
            if let FaultAction::Crash(v) = e.action {
                if v.index() >= 8 {
                    let join_pos = c.timeline.events()[..i]
                        .iter()
                        .position(|p| p.action == FaultAction::Join(v));
                    assert!(join_pos.is_some(), "joiner {v} crashed before joining");
                }
            }
        }
    }

    #[test]
    fn free_riders_and_classes_fill_profiles() {
        let spec = AdversitySpec::none().with_free_riders(0.5).with_bandwidth_classes(vec![
            BandwidthClass { fraction: 0.25, cap_bps: Some(100_000) },
            BandwidthClass { fraction: 0.75, cap_bps: None },
        ]);
        let c = spec.compile(20, 5);
        let riders = c.profiles.iter().filter(|p| p.free_rider).count();
        assert_eq!(riders, 10, "round(0.5 * 19 receivers) free riders");
        assert!(!c.profiles[0].free_rider, "the source never free-rides");
        assert!(c.profiles[0].cap_bps.is_none(), "the source keeps its provisioning");
        let capped = c.profiles.iter().filter(|p| p.cap_bps == Some(Some(100_000))).count();
        // 5 of 20 ids carry the low cap; node 0 may have absorbed one slot.
        assert!((4..=5).contains(&capped), "got {capped}");
    }

    #[test]
    fn explicit_crashes_keep_hand_picked_victims_and_drop_duplicates() {
        let spec = AdversitySpec::none()
            .with_explicit_crash(Duration::from_secs(5), vec![NodeId::new(3), NodeId::new(4)])
            .with_explicit_crash(Duration::from_secs(9), vec![NodeId::new(4), NodeId::new(6)]);
        let c = spec.compile(10, 1);
        let crashed: Vec<NodeId> =
            c.timeline.events().iter().filter_map(|e| e.action.node()).collect();
        assert_eq!(crashed, vec![NodeId::new(3), NodeId::new(4), NodeId::new(6)]);
        assert!(c.timeline.is_order_sound(c.total_n));
    }

    #[test]
    fn explicit_crash_of_the_source_is_honoured() {
        // Random processes protect node 0; hand-picked victims do not —
        // deliberately killing the source is a legitimate experiment (and
        // what the legacy ChurnPlan allowed).
        let spec = AdversitySpec::none()
            .with_explicit_crash(Duration::from_secs(3), vec![NodeId::new(0), NodeId::new(2)]);
        let c = spec.compile(10, 1);
        let crashed: Vec<NodeId> =
            c.timeline.events().iter().filter_map(|e| e.action.node()).collect();
        assert_eq!(crashed, vec![NodeId::new(0), NodeId::new(2)]);
        assert!(c.timeline.is_order_sound(c.total_n));
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn absurd_fraction_is_rejected() {
        let _ = AdversitySpec::none().with_catastrophic(Duration::ZERO, 1.5);
    }

    #[test]
    fn byzantine_assignment_hits_the_fraction_and_spares_the_source() {
        let spec = AdversitySpec::none().with_byzantine(0.2, ByzantineMix::serve_corruptors());
        let c = spec.compile(61, 5);
        let byz = c.profiles.iter().filter(|p| p.byzantine.is_some()).count();
        assert_eq!(byz, 12, "round(0.2 * 60 receivers)");
        assert!(c.profiles[0].byzantine.is_none(), "the source is never Byzantine");
        assert!(c.profiles.iter().all(
            |p| p.byzantine.is_none() || p.byzantine == Some(ByzantineBehaviour::ServeCorrupt)
        ));
        assert!(c.is_sound());
    }

    #[test]
    fn byzantine_mix_draws_every_behaviour() {
        let mix = ByzantineMix { serve_corrupt: 1.0, propose_garbage: 1.0, eat_requests: 1.0 };
        let spec = AdversitySpec::none().with_byzantine(0.9, mix);
        let c = spec.compile(100, 2);
        for want in [
            ByzantineBehaviour::ServeCorrupt,
            ByzantineBehaviour::ProposeGarbage,
            ByzantineBehaviour::EatRequests,
        ] {
            assert!(
                c.profiles.iter().any(|p| p.byzantine == Some(want)),
                "an even mix over ~89 peers draws {want:?} almost surely"
            );
        }
    }

    #[test]
    fn partition_compiles_cells_and_paired_events() {
        let spec = AdversitySpec::none().with_partition(
            Duration::from_secs(20),
            Duration::from_secs(50),
            2,
        );
        let c = spec.compile(40, 7);
        assert_eq!(c.partitions.len(), 1);
        assert_eq!(c.partitions[0].cells.len(), 40);
        assert_eq!(c.partitions[0].cells[0], 0, "the source sits in cell 0");
        assert!(c.partitions[0].cells.contains(&1), "both cells are populated");
        let actions: Vec<FaultAction> = c.timeline.events().iter().map(|e| e.action).collect();
        assert_eq!(actions, vec![FaultAction::Partition(0), FaultAction::Heal(0)]);
        assert_eq!(c.timeline.events()[0].at, Time::from_secs(20));
        assert_eq!(c.timeline.events()[1].at, Time::from_secs(50));
        assert!(c.is_sound());
    }

    #[test]
    fn throttle_compiles_victims_and_interval() {
        let spec = AdversitySpec::none().with_throttle(
            Duration::from_secs(10),
            Duration::from_secs(30),
            0.5,
            Some(100_000),
        );
        let c = spec.compile(21, 3);
        assert_eq!(c.throttles.len(), 1);
        assert_eq!(c.throttles[0].victims.len(), 10, "round(0.5 * 20 receivers)");
        assert_eq!(c.throttles[0].cap_bps, Some(100_000));
        assert!(!c.throttles[0].victims.contains(&NodeId::new(0)), "never the source");
        let actions: Vec<FaultAction> = c.timeline.events().iter().map(|e| e.action).collect();
        assert_eq!(actions, vec![FaultAction::ThrottleStart(0), FaultAction::ThrottleEnd(0)]);
        assert!(c.is_sound());
    }

    #[test]
    fn network_events_interleave_chronologically_with_node_faults() {
        let spec = AdversitySpec::none()
            .with_catastrophic(Duration::from_secs(25), 0.3)
            .with_partition(Duration::from_secs(10), Duration::from_secs(40), 2)
            .with_throttle(Duration::from_secs(5), Duration::from_secs(45), 0.25, Some(64_000));
        let c = spec.compile(30, 9);
        let mut last = Time::ZERO;
        for e in c.timeline.events() {
            assert!(e.at >= last, "timeline stays sorted with network events mixed in");
            last = e.at;
        }
        assert!(c.is_sound());
        assert_eq!(spec.compile(30, 9), spec.compile(30, 9), "still deterministic");
    }

    #[test]
    #[should_panic(expected = "heal strictly after")]
    fn inverted_partition_is_rejected() {
        let _ =
            AdversitySpec::none().with_partition(Duration::from_secs(5), Duration::from_secs(5), 2);
    }
}
