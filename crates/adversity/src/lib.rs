//! One declarative fault & workload engine for every runtime.
//!
//! The paper's robustness results (Figures 7–8) crash a random fraction of
//! nodes at one instant. Real deployments misbehave in many more ways:
//! nodes leave and come back continuously, flash crowds join mid-stream,
//! some peers free-ride (request but never serve), and upload capacity is
//! heterogeneous. This crate turns all of those into *one* declarative
//! description — an [`AdversitySpec`] — that compiles deterministically
//! (seeded [`gossip_sim::DetRng`]) into:
//!
//! * a [`FaultTimeline`]: an ordered list of typed [`FaultEvent`]s
//!   (crash / rejoin / join), sorted by time, *order-sound* (a node never
//!   crashes twice without an intervening rejoin, never rejoins without a
//!   preceding crash, and never crashes before it has joined);
//! * per-node [`NodeProfile`]s: static attributes fixed at start-of-run
//!   (bandwidth-class cap overrides, free-rider flags, join times).
//!
//! Every runtime consumes the same compilation: the simulator schedules the
//! timeline on its event queue, the reactor pushes it onto its per-shard
//! timer wheels, and the thread-per-node runtime maps the crash events onto
//! its per-thread crash deadlines. One spec therefore produces directly
//! comparable reports from simulation and live UDP.
//!
//! Specs are constructed with the builder API or loaded from a small TOML
//! subset (see [`AdversitySpec::from_toml_str`]); compiling
//! [`AdversitySpec::none`] yields an empty timeline and default profiles,
//! so a no-adversity run is byte-identical to one that never heard of this
//! crate.
//!
//! # Examples
//!
//! ```
//! use gossip_adversity::AdversitySpec;
//! use gossip_types::Duration;
//!
//! // The paper's Figure 7/8 catastrophe: 80% of nodes crash at t = 60 s.
//! let spec = AdversitySpec::none().with_catastrophic(Duration::from_secs(60), 0.8);
//! let compiled = spec.compile(230, 1);
//! assert_eq!(compiled.timeline.len(), 184, "round(0.8 * 230) victims");
//! assert!(compiled.timeline.is_order_sound(compiled.total_n));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anchor;
pub mod chaos;
pub mod spec;
pub mod timeline;
pub mod toml;

pub use anchor::WallClockAnchor;
pub use chaos::{ChaosPlan, ChaosSpec};
pub use spec::{
    AdversitySpec, BandwidthClass, ByzantineMix, ByzantinePeers, Catastrophic, FlashCrowd,
    PartitionSpec, PoissonChurn, ThrottleSpec,
};
pub use timeline::{
    ByzantineBehaviour, CompiledAdversity, FaultAction, FaultEvent, FaultTimeline, NodeProfile,
    PartitionCells, PartitionState, ThrottlePlan,
};
pub use toml::SpecParseError;
