//! A TOML-subset loader for adversity specs.
//!
//! The build is fully offline (no registry crates), so this module parses
//! exactly the subset an [`AdversitySpec`] needs — `[section]` and
//! `[[array-of-tables]]` headers with `key = number` pairs, comments and
//! blank lines — instead of pulling in a TOML crate. The grammar is small
//! enough that the whole parser fits in a screen and rejects anything it
//! does not understand loudly.
//!
//! # Spec format
//!
//! ```toml
//! [catastrophic]
//! at_secs = 60.0
//! fraction = 0.8
//!
//! [churn]
//! start_secs = 10.0
//! end_secs = 120.0
//! leaves_per_sec = 0.5
//! mean_downtime_secs = 20.0   # omit for permanent departures
//!
//! [flash_crowd]
//! at_secs = 30.0
//! count = 50
//! spread_secs = 2.0
//!
//! [free_riders]
//! fraction = 0.2
//!
//! [[bandwidth_class]]
//! fraction = 0.5
//! cap_kbps = 700
//!
//! [[bandwidth_class]]
//! fraction = 0.5
//! cap_kbps = 300                # cap_kbps = 0 means "uncapped"
//!
//! [byzantine]
//! fraction = 0.2
//! serve_corrupt = 1.0           # behaviour-mix weights; all omitted =
//! propose_garbage = 0.0         # pure serve-corruptors
//! eat_requests = 0.0
//!
//! [[partition]]
//! at_secs = 30.0
//! heal_secs = 60.0
//! cells = 2
//!
//! [[throttle]]
//! start_secs = 20.0
//! end_secs = 40.0
//! fraction = 0.5
//! cap_kbps = 100                # cap_kbps = 0 means "uncapped"
//!
//! [chaos]                       # syscall-boundary faults (reactor only)
//! drop = 0.05                   # per-datagram mutation probabilities
//! duplicate = 0.02
//! reorder = 0.05
//! delay = 0.02
//! truncate = 0.01
//! eagain = 0.02                 # per-syscall errno probabilities
//! eintr = 0.01
//! short_send = 0.05
//! enobufs_at_secs = 2.0         # timed ENOBUFS burst...
//! enobufs_secs = 1.0            # ...lasting this long (default 1 s)
//! kill_socket_at_secs = 3.0     # one socket per shard dies (re-bind)
//! enosys_at_secs = 4.0          # batched backend downgrades mid-run
//! ```

use gossip_types::Duration;

use crate::spec::{AdversitySpec, BandwidthClass};

/// A parse or validation error, with the offending line when applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecParseError(pub String);

impl std::fmt::Display for SpecParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "adversity spec: {}", self.0)
    }
}

impl std::error::Error for SpecParseError {}

/// One parsed `[section]` (or `[[section]]` instance) and its keys.
struct Section {
    name: String,
    keys: Vec<(String, f64)>,
}

impl Section {
    fn get(&self, key: &str) -> Option<f64> {
        self.keys.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    fn require(&self, key: &str) -> Result<f64, SpecParseError> {
        self.get(key).ok_or_else(|| SpecParseError(format!("[{}] is missing `{key}`", self.name)))
    }
}

fn parse_sections(input: &str) -> Result<Vec<Section>, SpecParseError> {
    let mut sections: Vec<Section> = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            sections.push(Section { name: header.trim().to_string(), keys: Vec::new() });
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            let name = header.trim().to_string();
            if sections.iter().any(|s| s.name == name) {
                return Err(SpecParseError(format!("duplicate section [{name}]")));
            }
            sections.push(Section { name, keys: Vec::new() });
        } else if let Some((key, value)) = line.split_once('=') {
            let section = sections.last_mut().ok_or_else(|| {
                SpecParseError(format!("line {}: key outside any [section]", lineno + 1))
            })?;
            let value: f64 = value.trim().parse().map_err(|_| {
                SpecParseError(format!("line {}: `{}` is not a number", lineno + 1, value.trim()))
            })?;
            section.keys.push((key.trim().to_string(), value));
        } else {
            return Err(SpecParseError(format!("line {}: cannot parse `{line}`", lineno + 1)));
        }
    }
    Ok(sections)
}

fn secs(v: f64, what: &str) -> Result<Duration, SpecParseError> {
    if v.is_finite() && v >= 0.0 {
        Ok(Duration::from_secs_f64(v))
    } else {
        Err(SpecParseError(format!("{what} must be a non-negative number of seconds, got {v}")))
    }
}

impl AdversitySpec {
    /// Parses a spec from the TOML subset documented at the
    /// [module level](crate::toml).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecParseError`] naming the offending line or missing
    /// key for any input outside the subset.
    pub fn from_toml_str(input: &str) -> Result<Self, SpecParseError> {
        let mut spec = AdversitySpec::none();
        for section in parse_sections(input)? {
            match section.name.as_str() {
                "catastrophic" => {
                    spec.catastrophic = Some(crate::spec::Catastrophic {
                        at: secs(section.require("at_secs")?, "at_secs")?,
                        fraction: {
                            let f = section.require("fraction")?;
                            if !(0.0..=1.0).contains(&f) {
                                return Err(SpecParseError(format!(
                                    "[catastrophic] fraction must be within [0, 1], got {f}"
                                )));
                            }
                            f
                        },
                    });
                }
                "churn" => {
                    let start = secs(section.require("start_secs")?, "start_secs")?;
                    let end = secs(section.require("end_secs")?, "end_secs")?;
                    if start > end {
                        return Err(SpecParseError("[churn] window is inverted".to_string()));
                    }
                    let rate = section.require("leaves_per_sec")?;
                    if !(rate > 0.0 && rate.is_finite()) {
                        return Err(SpecParseError(format!(
                            "[churn] leaves_per_sec must be positive, got {rate}"
                        )));
                    }
                    spec.churn = Some(crate::spec::PoissonChurn {
                        start,
                        end,
                        leaves_per_sec: rate,
                        mean_downtime: section
                            .get("mean_downtime_secs")
                            .map(|v| secs(v, "mean_downtime_secs"))
                            .transpose()?,
                    });
                }
                "flash_crowd" => {
                    let count = section.require("count")?;
                    if count < 0.0 || count.fract() != 0.0 {
                        return Err(SpecParseError(format!(
                            "[flash_crowd] count must be a non-negative integer, got {count}"
                        )));
                    }
                    spec.flash_crowd = Some(crate::spec::FlashCrowd {
                        at: secs(section.require("at_secs")?, "at_secs")?,
                        count: count as usize,
                        spread: section
                            .get("spread_secs")
                            .map_or(Ok(Duration::ZERO), |v| secs(v, "spread_secs"))?,
                    });
                }
                "free_riders" => {
                    let f = section.require("fraction")?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(SpecParseError(format!(
                            "[free_riders] fraction must be within [0, 1], got {f}"
                        )));
                    }
                    spec.free_rider_fraction = Some(f);
                }
                "bandwidth_class" => {
                    let kbps = section.require("cap_kbps")?;
                    if kbps < 0.0 {
                        return Err(SpecParseError("cap_kbps must be non-negative".to_string()));
                    }
                    spec.bandwidth_classes.push(BandwidthClass {
                        fraction: section.require("fraction")?,
                        cap_bps: if kbps == 0.0 { None } else { Some((kbps * 1000.0) as u64) },
                    });
                }
                "byzantine" => {
                    let f = section.require("fraction")?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(SpecParseError(format!(
                            "[byzantine] fraction must be within [0, 1], got {f}"
                        )));
                    }
                    let weight = |key: &str, default: f64| -> Result<f64, SpecParseError> {
                        let w = section.get(key).unwrap_or(default);
                        if w >= 0.0 && w.is_finite() {
                            Ok(w)
                        } else {
                            Err(SpecParseError(format!(
                                "[byzantine] {key} must be a non-negative weight, got {w}"
                            )))
                        }
                    };
                    let mix = crate::spec::ByzantineMix {
                        serve_corrupt: weight("serve_corrupt", 1.0)?,
                        propose_garbage: weight("propose_garbage", 0.0)?,
                        eat_requests: weight("eat_requests", 0.0)?,
                    };
                    spec.byzantine = Some(crate::spec::ByzantinePeers { fraction: f, mix });
                }
                "partition" => {
                    let at = secs(section.require("at_secs")?, "at_secs")?;
                    let heal = secs(section.require("heal_secs")?, "heal_secs")?;
                    if at >= heal {
                        return Err(SpecParseError(
                            "[[partition]] must heal strictly after it splits".to_string(),
                        ));
                    }
                    let cells = section.require("cells")?;
                    if cells < 2.0 || cells.fract() != 0.0 {
                        return Err(SpecParseError(format!(
                            "[[partition]] cells must be an integer ≥ 2, got {cells}"
                        )));
                    }
                    spec.partitions.push(crate::spec::PartitionSpec {
                        at,
                        heal,
                        cells: cells as usize,
                    });
                }
                "throttle" => {
                    let start = secs(section.require("start_secs")?, "start_secs")?;
                    let end = secs(section.require("end_secs")?, "end_secs")?;
                    if start >= end {
                        return Err(SpecParseError(
                            "[[throttle]] must end strictly after it starts".to_string(),
                        ));
                    }
                    let f = section.require("fraction")?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err(SpecParseError(format!(
                            "[[throttle]] fraction must be within [0, 1], got {f}"
                        )));
                    }
                    let kbps = section.require("cap_kbps")?;
                    if kbps < 0.0 {
                        return Err(SpecParseError("cap_kbps must be non-negative".to_string()));
                    }
                    spec.throttles.push(crate::spec::ThrottleSpec {
                        start,
                        end,
                        fraction: f,
                        cap_bps: if kbps == 0.0 { None } else { Some((kbps * 1000.0) as u64) },
                    });
                }
                "chaos" => {
                    let prob = |key: &str| -> Result<f64, SpecParseError> {
                        let p = section.get(key).unwrap_or(0.0);
                        if (0.0..=1.0).contains(&p) {
                            Ok(p)
                        } else {
                            Err(SpecParseError(format!(
                                "[chaos] {key} must be within [0, 1], got {p}"
                            )))
                        }
                    };
                    let mut chaos = crate::chaos::ChaosSpec {
                        drop: prob("drop")?,
                        duplicate: prob("duplicate")?,
                        reorder: prob("reorder")?,
                        delay: prob("delay")?,
                        truncate: prob("truncate")?,
                        eagain: prob("eagain")?,
                        eintr: prob("eintr")?,
                        short_send: prob("short_send")?,
                        ..Default::default()
                    };
                    if let Some(at) = section.get("enobufs_at_secs") {
                        chaos.enobufs_at = Some(secs(at, "enobufs_at_secs")?);
                        chaos.enobufs_for =
                            secs(section.get("enobufs_secs").unwrap_or(1.0), "enobufs_secs")?;
                    }
                    if let Some(at) = section.get("kill_socket_at_secs") {
                        chaos.kill_socket_at = Some(secs(at, "kill_socket_at_secs")?);
                    }
                    if let Some(at) = section.get("enosys_at_secs") {
                        chaos.enosys_at = Some(secs(at, "enosys_at_secs")?);
                    }
                    spec.chaos = chaos;
                }
                other => {
                    return Err(SpecParseError(format!("unknown section [{other}]")));
                }
            }
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r"
# every process at once
[catastrophic]
at_secs = 60.0
fraction = 0.8

[churn]
start_secs = 10
end_secs = 120
leaves_per_sec = 0.5
mean_downtime_secs = 20

[flash_crowd]
at_secs = 30
count = 50
spread_secs = 2

[free_riders]
fraction = 0.2

[[bandwidth_class]]
fraction = 0.5
cap_kbps = 700

[[bandwidth_class]]
fraction = 0.5
cap_kbps = 0

[byzantine]
fraction = 0.2
propose_garbage = 0.5

[[partition]]
at_secs = 30
heal_secs = 60
cells = 2

[[throttle]]
start_secs = 20
end_secs = 40
fraction = 0.5
cap_kbps = 100

[chaos]
drop = 0.05
duplicate = 0.02
reorder = 0.05
short_send = 0.1
enobufs_at_secs = 2
kill_socket_at_secs = 3
enosys_at_secs = 4
";

    #[test]
    fn full_spec_round_trips_every_field() {
        let spec = AdversitySpec::from_toml_str(FULL).expect("parses");
        let cat = spec.catastrophic.expect("catastrophic");
        assert_eq!(cat.at, Duration::from_secs(60));
        assert!((cat.fraction - 0.8).abs() < 1e-12);
        let churn = spec.churn.expect("churn");
        assert_eq!(churn.mean_downtime, Some(Duration::from_secs(20)));
        let fc = spec.flash_crowd.expect("flash crowd");
        assert_eq!(fc.count, 50);
        assert_eq!(fc.spread, Duration::from_secs(2));
        assert_eq!(spec.free_rider_fraction, Some(0.2));
        assert_eq!(spec.bandwidth_classes.len(), 2);
        assert_eq!(spec.bandwidth_classes[0].cap_bps, Some(700_000));
        assert_eq!(spec.bandwidth_classes[1].cap_bps, None, "0 kbps means uncapped");
        let byz = spec.byzantine.expect("byzantine");
        assert!((byz.fraction - 0.2).abs() < 1e-12);
        assert!((byz.mix.serve_corrupt - 1.0).abs() < 1e-12, "omitted weight defaults");
        assert!((byz.mix.propose_garbage - 0.5).abs() < 1e-12);
        assert_eq!(spec.partitions.len(), 1);
        assert_eq!(spec.partitions[0].cells, 2);
        assert_eq!(spec.partitions[0].heal, Duration::from_secs(60));
        assert_eq!(spec.throttles.len(), 1);
        assert_eq!(spec.throttles[0].cap_bps, Some(100_000));
        assert!((spec.chaos.drop - 0.05).abs() < 1e-12);
        assert!((spec.chaos.short_send - 0.1).abs() < 1e-12);
        assert_eq!(spec.chaos.enobufs_at, Some(Duration::from_secs(2)));
        assert_eq!(spec.chaos.enobufs_for, Duration::from_secs(1), "burst length defaults to 1 s");
        assert_eq!(spec.chaos.kill_socket_at, Some(Duration::from_secs(3)));
        assert_eq!(spec.chaos.enosys_at, Some(Duration::from_secs(4)));
    }

    #[test]
    fn empty_chaos_section_keeps_the_spec_empty() {
        let spec = AdversitySpec::from_toml_str("[chaos]\n").expect("parses");
        assert!(spec.chaos.is_none());
        assert!(spec.is_none(), "an empty [chaos] section must not count as adversity");
    }

    #[test]
    fn empty_input_is_the_empty_spec() {
        let spec = AdversitySpec::from_toml_str("# nothing\n\n").expect("parses");
        assert!(spec.is_none());
    }

    #[test]
    fn errors_name_the_problem() {
        assert!(AdversitySpec::from_toml_str("[unknown]\nx = 1\n")
            .unwrap_err()
            .0
            .contains("unknown section"));
        assert!(AdversitySpec::from_toml_str("x = 1\n").unwrap_err().0.contains("outside any"));
        assert!(AdversitySpec::from_toml_str("[catastrophic]\nat_secs = 1\n")
            .unwrap_err()
            .0
            .contains("missing `fraction`"));
        assert!(AdversitySpec::from_toml_str("[catastrophic]\nat_secs = 1\nfraction = 2\n")
            .unwrap_err()
            .0
            .contains("within [0, 1]"));
        assert!(AdversitySpec::from_toml_str(
            "[churn]\nstart_secs = 9\nend_secs = 1\nleaves_per_sec = 1\n"
        )
        .unwrap_err()
        .0
        .contains("inverted"));
        assert!(AdversitySpec::from_toml_str("[catastrophic]\nat_secs = oops\n")
            .unwrap_err()
            .0
            .contains("not a number"));
        assert!(AdversitySpec::from_toml_str("[byzantine]\nfraction = 2\n")
            .unwrap_err()
            .0
            .contains("within [0, 1]"));
        assert!(AdversitySpec::from_toml_str(
            "[[partition]]\nat_secs = 9\nheal_secs = 3\ncells = 2\n"
        )
        .unwrap_err()
        .0
        .contains("heal strictly after"));
        assert!(AdversitySpec::from_toml_str(
            "[[throttle]]\nstart_secs = 5\nend_secs = 5\nfraction = 0.5\ncap_kbps = 10\n"
        )
        .unwrap_err()
        .0
        .contains("end strictly after"));
        assert!(AdversitySpec::from_toml_str("[chaos]\ndrop = 2\n")
            .unwrap_err()
            .0
            .contains("within [0, 1]"));
    }

    #[test]
    fn parsed_spec_compiles() {
        let spec = AdversitySpec::from_toml_str(FULL).expect("parses");
        let c = spec.compile(100, 3);
        assert_eq!(c.total_n, 150);
        assert!(c.timeline.is_order_sound(c.total_n));
    }
}
