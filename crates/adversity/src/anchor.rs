//! Wall-clock anchoring of the compiled fault timeline.
//!
//! Inside one process every shard shares a `ClusterClock`, so `Time::ZERO`
//! is trivially the same everywhere. Across *processes* there is no shared
//! `Instant`: the coordinator instead broadcasts one UNIX timestamp — the
//! agreed stream start — and every process maps it onto its own monotonic
//! clock with [`WallClockAnchor::epoch_instant`]. All processes then compile
//! the identical [`crate::FaultTimeline`] from the shared spec and play it
//! against clocks whose zero points coincide to within host wall-clock skew
//! (NTP-class skew is far below the gossip period, so cross-process fault
//! events stay effectively synchronised).

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// An agreed start instant, expressed as UNIX microseconds so it survives a
/// trip through a control socket between hosts.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use gossip_adversity::WallClockAnchor;
///
/// // Coordinator side: start two hundred milliseconds from now.
/// let anchor = WallClockAnchor::starting_in(Duration::from_millis(200));
/// // Worker side (possibly another process): recover a local Instant.
/// let epoch = WallClockAnchor::new(anchor.start_unix_micros).epoch_instant();
/// assert!(epoch >= std::time::Instant::now());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallClockAnchor {
    /// The agreed start, in microseconds since the UNIX epoch.
    pub start_unix_micros: u64,
}

impl WallClockAnchor {
    /// Wraps an agreed start received from a coordinator.
    pub fn new(start_unix_micros: u64) -> Self {
        WallClockAnchor { start_unix_micros }
    }

    /// An anchor `delay` into the future — the coordinator picks the delay
    /// large enough for every process to receive the anchor before it fires.
    pub fn starting_in(delay: Duration) -> Self {
        WallClockAnchor { start_unix_micros: now_unix_micros() + delay.as_micros() as u64 }
    }

    /// How long until the anchored start ([`Duration::ZERO`] if it passed).
    pub fn until_start(&self) -> Duration {
        Duration::from_micros(self.start_unix_micros.saturating_sub(now_unix_micros()))
    }

    /// Maps the anchor onto this process's monotonic clock: the `Instant`
    /// at which the shared timeline's `Time::ZERO` occurs. For an anchor in
    /// the past beyond what the monotonic clock can represent, saturates at
    /// the earliest representable instant.
    pub fn epoch_instant(&self) -> Instant {
        let now_wall = now_unix_micros();
        let now = Instant::now();
        if self.start_unix_micros >= now_wall {
            now + Duration::from_micros(self.start_unix_micros - now_wall)
        } else {
            let behind = Duration::from_micros(now_wall - self.start_unix_micros);
            now.checked_sub(behind).unwrap_or(now)
        }
    }
}

/// The current wall clock, in microseconds since the UNIX epoch.
pub fn now_unix_micros() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_micros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn future_anchor_maps_to_future_instant() {
        let anchor = WallClockAnchor::starting_in(Duration::from_secs(2));
        assert!(anchor.until_start() > Duration::from_secs(1));
        let epoch = anchor.epoch_instant();
        assert!(epoch > Instant::now() + Duration::from_millis(500));
    }

    #[test]
    fn past_anchor_is_saturating() {
        let anchor = WallClockAnchor::new(now_unix_micros().saturating_sub(1_000_000));
        assert_eq!(anchor.until_start(), Duration::ZERO);
        assert!(anchor.epoch_instant() <= Instant::now());
    }

    #[test]
    fn anchor_roundtrips_through_micros() {
        let anchor = WallClockAnchor::starting_in(Duration::from_millis(50));
        let copy = WallClockAnchor::new(anchor.start_unix_micros);
        assert_eq!(anchor, copy);
    }
}
