//! Property-based tests of spec compilation: the compiler must be a pure
//! function of `(spec, n, seed)` and its output must always be
//! order-sound, whatever the composition of fault processes.

use proptest::prelude::*;

use gossip_adversity::{AdversitySpec, BandwidthClass, ByzantineMix, FaultAction};
use gossip_types::Duration;

/// Builds a composed spec from raw knobs (each process optional).
#[allow(clippy::too_many_arguments)]
fn build_spec(
    cat: Option<(u16, u8)>,
    churn: Option<(u16, u16, u8, u8)>,
    crowd: Option<(u16, u8)>,
    riders_pct: u8,
    classes: bool,
    byzantine: Option<(u8, u8, u8, u8)>,
    partitions: Vec<(u16, u16, u8)>,
    throttles: Vec<(u16, u16, u8, u16)>,
) -> AdversitySpec {
    let mut spec = AdversitySpec::none();
    if let Some((at_s, pct)) = cat {
        spec = spec.with_catastrophic(
            Duration::from_secs(u64::from(at_s)),
            f64::from(pct.min(100)) / 100.0,
        );
    }
    if let Some((start_s, len_s, rate_decis, down_s)) = churn {
        spec = spec.with_poisson_churn(
            Duration::from_secs(u64::from(start_s)),
            Duration::from_secs(u64::from(start_s) + u64::from(len_s)),
            f64::from(rate_decis.max(1)) / 10.0,
            (down_s > 0).then(|| Duration::from_secs(u64::from(down_s))),
        );
    }
    if let Some((at_s, count)) = crowd {
        spec = spec.with_flash_crowd(
            Duration::from_secs(u64::from(at_s)),
            count as usize,
            Duration::from_secs(2),
        );
    }
    if riders_pct > 0 {
        spec = spec.with_free_riders(f64::from(riders_pct.min(100)) / 100.0);
    }
    if classes {
        spec = spec.with_bandwidth_classes(vec![
            BandwidthClass { fraction: 0.5, cap_bps: Some(700_000) },
            BandwidthClass { fraction: 0.5, cap_bps: Some(300_000) },
        ]);
    }
    if let Some((pct, w_serve, w_propose, w_eat)) = byzantine {
        spec = spec.with_byzantine(
            f64::from(pct.min(100)) / 100.0,
            ByzantineMix {
                serve_corrupt: f64::from(w_serve),
                propose_garbage: f64::from(w_propose),
                eat_requests: f64::from(w_eat),
            },
        );
    }
    for (at_s, len_s, cells) in partitions {
        spec = spec.with_partition(
            Duration::from_secs(u64::from(at_s)),
            Duration::from_secs(u64::from(at_s) + u64::from(len_s.max(1))),
            usize::from(cells.clamp(2, 8)),
        );
    }
    for (start_s, len_s, pct, cap_kbps) in throttles {
        spec = spec.with_throttle(
            Duration::from_secs(u64::from(start_s)),
            Duration::from_secs(u64::from(start_s) + u64::from(len_s.max(1))),
            f64::from(pct.min(100)) / 100.0,
            (cap_kbps > 0).then(|| u64::from(cap_kbps) * 1000),
        );
    }
    spec
}

proptest! {
    /// Same `(spec, n, seed)` → byte-identical timeline and profiles;
    /// a different seed must not be able to break soundness either.
    #[test]
    fn compilation_is_deterministic_and_order_sound(
        n in 2usize..200,
        seed in 0u64..1_000_000,
        cat in proptest::option::of((0u16..120, 0u8..101)),
        churn in proptest::option::of((0u16..60, 1u16..90, 1u8..30, 0u8..20)),
        crowd in proptest::option::of((0u16..90, 0u8..20)),
        riders in 0u8..101,
        classes in any::<bool>(),
        byzantine in proptest::option::of((0u8..101, 0u8..4, 0u8..4, 0u8..4)),
        partitions in proptest::collection::vec((0u16..90, 1u16..60, 2u8..9), 0..3),
        throttles in proptest::collection::vec((0u16..90, 1u16..60, 0u8..101, 0u16..800), 0..3),
    ) {
        let spec = build_spec(cat, churn, crowd, riders, classes, byzantine, partitions, throttles);
        let a = spec.compile(n, seed);
        let b = spec.compile(n, seed);
        prop_assert_eq!(&a, &b, "compilation must be deterministic");
        prop_assert!(
            a.timeline.is_order_sound(a.total_n),
            "timeline must be order-sound: {:?}",
            a.timeline
        );
        prop_assert!(a.is_sound(), "compiled plan must be structurally sound");
        // Sorted by time (also implied by order-soundness, asserted
        // directly for a clearer failure).
        let times: Vec<u64> = a.timeline.events().iter().map(|e| e.at.as_micros()).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "events must be time-sorted");
        // The source is untouchable and joiner ids are exactly the tail.
        for e in a.timeline.events() {
            if let Some(node) = e.action.node() {
                prop_assert!(node.index() != 0, "node 0 must never appear: {e:?}");
                prop_assert!(node.index() < a.total_n);
            }
            if let FaultAction::Join(v) = e.action {
                prop_assert!(v.index() >= a.base_n, "joins are new ids only");
            }
        }
        prop_assert_eq!(a.profiles.len(), a.total_n);
        prop_assert_eq!(a.total_n - a.base_n, crowd.map_or(0, |(_, c)| c as usize));
        // Byzantine assignment never names the source and never a joiner.
        prop_assert!(a.profiles[0].byzantine.is_none(), "the source is never Byzantine");
        for p in &a.profiles[a.base_n..] {
            prop_assert!(p.byzantine.is_none(), "joiners are never Byzantine");
        }
    }

    /// No victim crashes twice without an intervening rejoin — stated
    /// directly on the event stream, independent of `is_order_sound`'s
    /// own bookkeeping.
    #[test]
    fn no_double_crash_without_rejoin(
        n in 3usize..100,
        seed in 0u64..100_000,
        rate_decis in 5u8..40,
        down_s in 0u8..10,
    ) {
        let spec = AdversitySpec::none()
            .with_catastrophic(Duration::from_secs(20), 0.5)
            .with_poisson_churn(
                Duration::ZERO,
                Duration::from_secs(90),
                f64::from(rate_decis) / 10.0,
                (down_s > 0).then(|| Duration::from_secs(u64::from(down_s))),
            );
        let c = spec.compile(n, seed);
        let mut down = vec![false; c.total_n];
        for e in c.timeline.events() {
            match e.action {
                FaultAction::Crash(v) => {
                    prop_assert!(!down[v.index()], "{v} crashed while already down");
                    down[v.index()] = true;
                }
                FaultAction::Rejoin(v) => {
                    prop_assert!(down[v.index()], "{v} rejoined while alive");
                    down[v.index()] = false;
                }
                _ => {}
            }
        }
    }

    /// Every heal follows its split and every throttle end follows its
    /// start — stated directly on the event stream, per class index.
    #[test]
    fn network_intervals_pair_up(
        n in 2usize..150,
        seed in 0u64..100_000,
        partitions in proptest::collection::vec((0u16..90, 1u16..60, 2u8..9), 1..4),
        throttles in proptest::collection::vec((0u16..90, 1u16..60, 1u8..101, 0u16..800), 1..4),
    ) {
        let spec = build_spec(None, None, None, 0, false, None, partitions.clone(), throttles.clone());
        let c = spec.compile(n, seed);
        let mut split = vec![false; partitions.len()];
        let mut throttled = vec![false; throttles.len()];
        for e in c.timeline.events() {
            match e.action {
                FaultAction::Partition(k) => {
                    prop_assert!(!split[k as usize], "partition {k} split twice");
                    split[k as usize] = true;
                }
                FaultAction::Heal(k) => {
                    prop_assert!(split[k as usize], "partition {k} healed unsplit");
                    split[k as usize] = false;
                }
                FaultAction::ThrottleStart(k) => {
                    prop_assert!(!throttled[k as usize], "throttle {k} started twice");
                    throttled[k as usize] = true;
                }
                FaultAction::ThrottleEnd(k) => {
                    prop_assert!(throttled[k as usize], "throttle {k} ended unstarted");
                    throttled[k as usize] = false;
                }
                _ => {}
            }
        }
        prop_assert!(split.iter().all(|&s| !s), "every partition heals");
        prop_assert!(throttled.iter().all(|&t| !t), "every throttle ends");
        // Every victim set and cell map is sized for the population.
        prop_assert_eq!(c.partitions.len(), partitions.len());
        prop_assert_eq!(c.throttles.len(), throttles.len());
        prop_assert!(c.is_sound());
    }
}
