//! Property-based tests of spec compilation: the compiler must be a pure
//! function of `(spec, n, seed)` and its output must always be
//! order-sound, whatever the composition of fault processes.

use proptest::prelude::*;

use gossip_adversity::{AdversitySpec, BandwidthClass, FaultAction};
use gossip_types::Duration;

/// Builds a composed spec from raw knobs (each process optional).
fn build_spec(
    cat: Option<(u16, u8)>,
    churn: Option<(u16, u16, u8, u8)>,
    crowd: Option<(u16, u8)>,
    riders_pct: u8,
    classes: bool,
) -> AdversitySpec {
    let mut spec = AdversitySpec::none();
    if let Some((at_s, pct)) = cat {
        spec = spec.with_catastrophic(
            Duration::from_secs(u64::from(at_s)),
            f64::from(pct.min(100)) / 100.0,
        );
    }
    if let Some((start_s, len_s, rate_decis, down_s)) = churn {
        spec = spec.with_poisson_churn(
            Duration::from_secs(u64::from(start_s)),
            Duration::from_secs(u64::from(start_s) + u64::from(len_s)),
            f64::from(rate_decis.max(1)) / 10.0,
            (down_s > 0).then(|| Duration::from_secs(u64::from(down_s))),
        );
    }
    if let Some((at_s, count)) = crowd {
        spec = spec.with_flash_crowd(
            Duration::from_secs(u64::from(at_s)),
            count as usize,
            Duration::from_secs(2),
        );
    }
    if riders_pct > 0 {
        spec = spec.with_free_riders(f64::from(riders_pct.min(100)) / 100.0);
    }
    if classes {
        spec = spec.with_bandwidth_classes(vec![
            BandwidthClass { fraction: 0.5, cap_bps: Some(700_000) },
            BandwidthClass { fraction: 0.5, cap_bps: Some(300_000) },
        ]);
    }
    spec
}

proptest! {
    /// Same `(spec, n, seed)` → byte-identical timeline and profiles;
    /// a different seed must not be able to break soundness either.
    #[test]
    fn compilation_is_deterministic_and_order_sound(
        n in 2usize..200,
        seed in 0u64..1_000_000,
        cat in proptest::option::of((0u16..120, 0u8..101)),
        churn in proptest::option::of((0u16..60, 1u16..90, 1u8..30, 0u8..20)),
        crowd in proptest::option::of((0u16..90, 0u8..20)),
        riders in 0u8..101,
        classes in any::<bool>(),
    ) {
        let spec = build_spec(cat, churn, crowd, riders, classes);
        let a = spec.compile(n, seed);
        let b = spec.compile(n, seed);
        prop_assert_eq!(&a, &b, "compilation must be deterministic");
        prop_assert!(
            a.timeline.is_order_sound(a.total_n),
            "timeline must be order-sound: {:?}",
            a.timeline
        );
        // Sorted by time (also implied by order-soundness, asserted
        // directly for a clearer failure).
        let times: Vec<u64> = a.timeline.events().iter().map(|e| e.at.as_micros()).collect();
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]), "events must be time-sorted");
        // The source is untouchable and joiner ids are exactly the tail.
        for e in a.timeline.events() {
            prop_assert!(e.action.node().index() != 0, "node 0 must never appear: {e:?}");
            prop_assert!(e.action.node().index() < a.total_n);
            if let FaultAction::Join(v) = e.action {
                prop_assert!(v.index() >= a.base_n, "joins are new ids only");
            }
        }
        prop_assert_eq!(a.profiles.len(), a.total_n);
        prop_assert_eq!(a.total_n - a.base_n, crowd.map_or(0, |(_, c)| c as usize));
    }

    /// No victim crashes twice without an intervening rejoin — stated
    /// directly on the event stream, independent of `is_order_sound`'s
    /// own bookkeeping.
    #[test]
    fn no_double_crash_without_rejoin(
        n in 3usize..100,
        seed in 0u64..100_000,
        rate_decis in 5u8..40,
        down_s in 0u8..10,
    ) {
        let spec = AdversitySpec::none()
            .with_catastrophic(Duration::from_secs(20), 0.5)
            .with_poisson_churn(
                Duration::ZERO,
                Duration::from_secs(90),
                f64::from(rate_decis) / 10.0,
                (down_s > 0).then(|| Duration::from_secs(u64::from(down_s))),
            );
        let c = spec.compile(n, seed);
        let mut down = vec![false; c.total_n];
        for e in c.timeline.events() {
            match e.action {
                FaultAction::Crash(v) => {
                    prop_assert!(!down[v.index()], "{v} crashed while already down");
                    down[v.index()] = true;
                }
                FaultAction::Rejoin(v) => {
                    prop_assert!(down[v.index()], "{v} rejoined while alive");
                    down[v.index()] = false;
                }
                FaultAction::Join(_) => {}
            }
        }
    }
}
