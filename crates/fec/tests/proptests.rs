//! Property-based tests of the erasure code: the MDS property must hold
//! for arbitrary geometries, shard contents and erasure patterns.

use proptest::collection::vec;
use proptest::prelude::*;

use gossip_fec::{FecError, ReedSolomon, WindowDecoder, WindowEncoder, WindowParams};

/// Strategy: a small but arbitrary code geometry.
fn geometry() -> impl Strategy<Value = (usize, usize)> {
    (1usize..24, 0usize..10)
}

proptest! {
    /// Any k of the k+r shards reconstruct the original data exactly.
    #[test]
    fn reconstructs_from_any_k_shards(
        (k, r) in geometry(),
        shard_len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, r).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..shard_len).map(|j| ((seed as usize + i * 31 + j * 7) % 256) as u8).collect())
            .collect();
        let parity = rs.encode(&data).expect("encodes");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Derive an erasure pattern of exactly r shards from the seed.
        let total = k + r;
        let mut erase: Vec<usize> = (0..total).collect();
        let mut state = seed;
        for i in (1..erase.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            erase.swap(i, j);
        }
        erase.truncate(r);

        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &e in &erase {
            shards[e] = None;
        }
        rs.reconstruct(&mut shards).expect("r erasures are recoverable");
        for (i, shard) in shards.iter().enumerate() {
            prop_assert_eq!(shard.as_ref().expect("filled"), &full[i]);
        }
    }

    /// One erasure beyond the budget always fails cleanly with
    /// `TooFewShards` — never a wrong answer, never a panic.
    #[test]
    fn too_many_erasures_always_fail(
        (k, r) in (2usize..16, 0usize..8),
        shard_len in 1usize..32,
    ) {
        let rs = ReedSolomon::new(k, r).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..k).map(|i| vec![i as u8; shard_len]).collect();
        let parity = rs.encode(&data).expect("encodes");
        let mut shards: Vec<Option<Vec<u8>>> =
            data.into_iter().chain(parity).map(Some).collect();
        for slot in shards.iter_mut().take(r + 1) {
            *slot = None;
        }
        let err = rs.reconstruct(&mut shards).unwrap_err();
        let is_too_few = matches!(err, FecError::TooFewShards { .. });
        prop_assert!(is_too_few, "expected TooFewShards, got {err:?}");
    }

    /// Parity is a linear function of the data: encoding the XOR of two
    /// window contents equals the XOR of their parities (characteristic-2
    /// linearity — a strong algebraic invariant of the implementation).
    #[test]
    fn parity_is_linear(
        (k, r) in (1usize..12, 1usize..6),
        a in vec(any::<u8>(), 1..32),
    ) {
        let shard_len = a.len();
        let rs = ReedSolomon::new(k, r).expect("valid geometry");
        let da: Vec<Vec<u8>> = (0..k).map(|i| a.iter().map(|&x| x.wrapping_add(i as u8)).collect()).collect();
        let db: Vec<Vec<u8>> = (0..k).map(|i| a.iter().map(|&x| x.wrapping_mul(3).wrapping_add(i as u8)).collect()).collect();
        let dxor: Vec<Vec<u8>> = da
            .iter()
            .zip(&db)
            .map(|(ra, rb)| ra.iter().zip(rb).map(|(x, y)| x ^ y).collect())
            .collect();
        let pa = rs.encode(&da).expect("encodes");
        let pb = rs.encode(&db).expect("encodes");
        let pxor = rs.encode(&dxor).expect("encodes");
        for i in 0..r {
            let manual: Vec<u8> = pa[i].iter().zip(&pb[i]).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(&pxor[i], &manual, "parity row {} not linear (len {})", i, shard_len);
        }
    }

    /// The window decoder agrees with the raw codec for any subset of
    /// received packets.
    #[test]
    fn window_decoder_matches_codec(
        received_mask in vec(any::<bool>(), 14),
        seed in any::<u64>(),
    ) {
        let params = WindowParams::new(10, 4);
        let enc = WindowEncoder::new(params).expect("valid");
        let data: Vec<Vec<u8>> =
            (0..10).map(|i| (0..8).map(|j| ((seed as usize + i * 13 + j) % 256) as u8).collect()).collect();
        let parity = enc.encode(&data).expect("encodes");
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        let mut dec = WindowDecoder::new(params).expect("valid");
        let mut received = 0;
        for (i, &keep) in received_mask.iter().enumerate() {
            if keep {
                dec.receive(i, full[i].clone());
                received += 1;
            }
        }
        prop_assert_eq!(dec.is_decodable(), received >= 10);
        if received >= 10 {
            let out = dec.reconstruct().expect("decodable");
            prop_assert_eq!(out, data);
        }
    }
}

/// The vectorised GF(256) kernels must be byte-identical to the scalar
/// reference on arbitrary slices — any length (head blocks + odd tails),
/// any coefficient, any content.
#[cfg(feature = "simd")]
mod simd_equivalence {
    use proptest::collection::vec;
    use proptest::prelude::*;

    use gossip_fec::gf;

    proptest! {
        #[test]
        fn mul_acc_slice_simd_matches_scalar(
            src in vec(any::<u8>(), 0..600),
            dst_seed in any::<u8>(),
            c in any::<u8>(),
        ) {
            let mut dst: Vec<u8> =
                (0..src.len()).map(|i| dst_seed.wrapping_add(i as u8)).collect();
            // Scalar reference, byte by byte through the log/exp tables.
            let expected: Vec<u8> =
                dst.iter().zip(&src).map(|(&d, &s)| gf::add(d, gf::mul(s, c))).collect();
            // The dispatching entry point (vector kernels when available).
            gf::mul_acc_slice(&mut dst, &src, c);
            prop_assert_eq!(dst, expected);
        }

        #[test]
        fn mul_slice_simd_matches_scalar(
            data in vec(any::<u8>(), 0..600),
            c in any::<u8>(),
        ) {
            let mut scaled = data.clone();
            // Scalar reference, byte by byte through the log/exp tables.
            let expected: Vec<u8> = data.iter().map(|&d| gf::mul(d, c)).collect();
            // The dispatching entry point (vector kernels when available).
            gf::mul_slice(&mut scaled, c);
            prop_assert_eq!(scaled, expected);
        }
    }
}
