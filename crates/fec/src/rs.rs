//! The systematic Reed–Solomon erasure codec.

use std::error::Error;
use std::fmt;

use crate::gf;
use crate::matrix::Matrix;

/// Errors produced by the erasure codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FecError {
    /// The requested code parameters are unusable (zero shards, or more than
    /// 256 total shards — GF(256) supports at most 256 evaluation points).
    InvalidParams {
        /// Requested number of data shards.
        data_shards: usize,
        /// Requested number of parity shards.
        parity_shards: usize,
    },
    /// The number of shards handed to encode/reconstruct does not match the
    /// codec's geometry.
    WrongShardCount {
        /// Number of shards provided by the caller.
        got: usize,
        /// Number of shards the codec expects.
        expected: usize,
    },
    /// Shards have inconsistent lengths (all shards of a window must be
    /// equally sized).
    ShardSizeMismatch,
    /// Fewer than `data_shards` shards are present, so the window cannot be
    /// reconstructed.
    TooFewShards {
        /// Shards currently present.
        have: usize,
        /// Shards needed for reconstruction.
        need: usize,
    },
}

impl fmt::Display for FecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FecError::InvalidParams { data_shards, parity_shards } => {
                write!(
                    f,
                    "invalid code parameters: {data_shards} data + {parity_shards} parity shards"
                )
            }
            FecError::WrongShardCount { got, expected } => {
                write!(f, "wrong shard count: got {got}, expected {expected}")
            }
            FecError::ShardSizeMismatch => write!(f, "shards have inconsistent sizes"),
            FecError::TooFewShards { have, need } => {
                write!(f, "too few shards to reconstruct: have {have}, need {need}")
            }
        }
    }
}

impl Error for FecError {}

/// A systematic Reed–Solomon erasure code with `k` data shards and `r`
/// parity shards.
///
/// The encoding matrix is the classic construction: take the
/// `(k + r) × k` Vandermonde matrix, normalise it so the top `k × k` block is
/// the identity (multiply by the inverse of the top block). The first `k`
/// output shards are then the data itself (systematic), and **any** `k` of
/// the `k + r` shards reconstruct the original data.
///
/// The paper's configuration is `ReedSolomon::new(101, 9)` — windows of 110
/// packets that survive any 9 losses.
///
/// # Examples
///
/// ```
/// use gossip_fec::ReedSolomon;
///
/// # fn main() -> Result<(), gossip_fec::FecError> {
/// let rs = ReedSolomon::new(101, 9)?;
/// assert_eq!(rs.total_shards(), 110);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_shards: usize,
    parity_shards: usize,
    /// Full `(k + r) × k` encoding matrix with identity top block.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a codec for `data_shards` data and `parity_shards` parity
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidParams`] if `data_shards == 0` or the total
    /// exceeds 256 (the field size).
    pub fn new(data_shards: usize, parity_shards: usize) -> Result<Self, FecError> {
        let total = data_shards + parity_shards;
        if data_shards == 0 || total > 256 {
            return Err(FecError::InvalidParams { data_shards, parity_shards });
        }
        let vandermonde = Matrix::vandermonde(total, data_shards);
        let top_inv = vandermonde
            .top_rows(data_shards)
            .inverse()
            .expect("square Vandermonde with distinct points is invertible");
        let encode_matrix = vandermonde.mul(&top_inv);
        Ok(ReedSolomon { data_shards, parity_shards, encode_matrix })
    }

    /// Returns the number of data shards (`k`).
    pub fn data_shards(&self) -> usize {
        self.data_shards
    }

    /// Returns the number of parity shards (`r`).
    pub fn parity_shards(&self) -> usize {
        self.parity_shards
    }

    /// Returns `k + r`.
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// Computes the parity shards for `data`.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::WrongShardCount`] if `data.len() != k`, or
    /// [`FecError::ShardSizeMismatch`] if the shards differ in length.
    pub fn encode<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, FecError> {
        if data.len() != self.data_shards {
            return Err(FecError::WrongShardCount { got: data.len(), expected: self.data_shards });
        }
        let shard_len = data[0].as_ref().len();
        if data.iter().any(|s| s.as_ref().len() != shard_len) {
            return Err(FecError::ShardSizeMismatch);
        }
        let mut parity = vec![vec![0u8; shard_len]; self.parity_shards];
        for (p, out) in parity.iter_mut().enumerate() {
            let row = self.encode_matrix.row(self.data_shards + p);
            for (d, shard) in data.iter().enumerate() {
                gf::mul_acc_slice(out, shard.as_ref(), row[d]);
            }
        }
        Ok(parity)
    }

    /// Reconstructs all missing shards in place.
    ///
    /// `shards` must contain exactly `k + r` entries; missing shards are
    /// `None`. On success every entry is `Some` and the data shards carry the
    /// original content.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::TooFewShards`] if fewer than `k` shards are
    /// present, plus the geometry errors of [`ReedSolomon::encode`].
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), FecError> {
        let total = self.total_shards();
        if shards.len() != total {
            return Err(FecError::WrongShardCount { got: shards.len(), expected: total });
        }
        let present: Vec<usize> = (0..total).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.data_shards {
            return Err(FecError::TooFewShards { have: present.len(), need: self.data_shards });
        }
        let shard_len = shards[present[0]].as_ref().expect("present shard").len();
        if present.iter().any(|&i| shards[i].as_ref().expect("present shard").len() != shard_len) {
            return Err(FecError::ShardSizeMismatch);
        }
        if present.len() == total {
            return Ok(()); // nothing to do
        }

        // Take the first k present shards; their encoding rows form an
        // invertible k×k matrix (any k rows of the normalised Vandermonde
        // construction are independent).
        let used = &present[..self.data_shards];
        let sub = self.encode_matrix.select_rows(used);
        let decode = sub.inverse().expect("any k rows of the encoding matrix are independent");

        // Recover the data shards: data[d] = Σ decode[d][j] * shard[used[j]].
        let missing_data: Vec<usize> =
            (0..self.data_shards).filter(|&i| shards[i].is_none()).collect();
        let mut recovered: Vec<(usize, Vec<u8>)> = Vec::with_capacity(missing_data.len());
        for &d in &missing_data {
            let mut out = vec![0u8; shard_len];
            for (j, &src) in used.iter().enumerate() {
                let coeff = decode.get(d, j);
                gf::mul_acc_slice(&mut out, shards[src].as_ref().expect("present shard"), coeff);
            }
            recovered.push((d, out));
        }
        for (d, shard) in recovered {
            shards[d] = Some(shard);
        }

        // Recompute any missing parity from the (now complete) data shards.
        let missing_parity: Vec<usize> =
            (self.data_shards..total).filter(|&i| shards[i].is_none()).collect();
        for p in missing_parity {
            let row = self.encode_matrix.row(p);
            let mut out = vec![0u8; shard_len];
            for d in 0..self.data_shards {
                gf::mul_acc_slice(&mut out, shards[d].as_ref().expect("data shard"), row[d]);
            }
            shards[p] = Some(out);
        }
        Ok(())
    }

    /// Convenience check: can a window with `present` shards out of
    /// `k + r` be reconstructed?
    pub fn is_decodable(&self, present: usize) -> bool {
        present >= self.data_shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k).map(|i| (0..len).map(|j| ((i * 31 + j * 7 + 13) % 251) as u8).collect()).collect()
    }

    #[test]
    fn encode_is_systematic() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        // The top block of the encode matrix must be the identity: encoding
        // leaves data untouched and only *adds* parity.
        for d in 0..5 {
            for c in 0..5 {
                let expected = u8::from(d == c);
                assert_eq!(rs.encode_matrix.get(d, c), expected);
            }
        }
    }

    #[test]
    fn roundtrip_no_loss_is_noop() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 16);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        let before = shards.clone();
        rs.reconstruct(&mut shards).unwrap();
        assert_eq!(shards, before);
    }

    #[test]
    fn recovers_from_max_erasures_all_positions() {
        let rs = ReedSolomon::new(6, 3).unwrap();
        let data = sample_data(6, 32);
        let parity = rs.encode(&data).unwrap();
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();

        // Erase every possible triple of shards.
        let total = 9;
        for a in 0..total {
            for b in (a + 1)..total {
                for c in (b + 1)..total {
                    let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                    shards[a] = None;
                    shards[b] = None;
                    shards[c] = None;
                    rs.reconstruct(&mut shards).unwrap();
                    for (i, shard) in shards.iter().enumerate() {
                        assert_eq!(
                            shard.as_ref().unwrap(),
                            &full[i],
                            "erasure {a},{b},{c} shard {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn too_many_erasures_fail_cleanly() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = sample_data(4, 8);
        let parity = rs.encode(&data).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> =
            data.iter().cloned().chain(parity).map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[2] = None;
        let err = rs.reconstruct(&mut shards).unwrap_err();
        assert_eq!(err, FecError::TooFewShards { have: 3, need: 4 });
    }

    #[test]
    fn paper_geometry_101_9() {
        let rs = ReedSolomon::new(101, 9).unwrap();
        let data = sample_data(101, 64);
        let parity = rs.encode(&data).unwrap();
        assert_eq!(parity.len(), 9);
        let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        // Drop 9 scattered shards (6 data, 3 parity).
        for i in [0, 17, 33, 50, 76, 100, 101, 105, 109] {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.as_ref().unwrap(), &full[i], "shard {i}");
        }
        assert!(rs.is_decodable(101));
        assert!(!rs.is_decodable(100));
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(matches!(ReedSolomon::new(0, 5), Err(FecError::InvalidParams { .. })));
        assert!(matches!(ReedSolomon::new(250, 7), Err(FecError::InvalidParams { .. })));
        assert!(ReedSolomon::new(247, 9).is_ok());
    }

    #[test]
    fn shard_geometry_errors() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let wrong_count = sample_data(2, 4);
        assert!(matches!(
            rs.encode(&wrong_count),
            Err(FecError::WrongShardCount { got: 2, expected: 3 })
        ));

        let ragged = vec![vec![0u8; 4], vec![0u8; 5], vec![0u8; 4]];
        assert_eq!(rs.encode(&ragged), Err(FecError::ShardSizeMismatch));

        let mut too_few = vec![Some(vec![0u8; 4]); 4];
        assert!(matches!(
            rs.reconstruct(&mut too_few),
            Err(FecError::WrongShardCount { got: 4, expected: 5 })
        ));
    }

    #[test]
    fn zero_parity_code_degenerates_gracefully() {
        let rs = ReedSolomon::new(4, 0).unwrap();
        let data = sample_data(4, 8);
        let parity = rs.encode(&data).unwrap();
        assert!(parity.is_empty());
        let mut shards: Vec<Option<Vec<u8>>> = data.into_iter().map(Some).collect();
        rs.reconstruct(&mut shards).unwrap();
        // With no parity, any loss is fatal.
        shards[2] = None;
        assert!(matches!(rs.reconstruct(&mut shards), Err(FecError::TooFewShards { .. })));
    }

    #[test]
    fn error_display_is_informative() {
        let e = FecError::TooFewShards { have: 3, need: 4 };
        assert_eq!(e.to_string(), "too few shards to reconstruct: have 3, need 4");
        let e = FecError::InvalidParams { data_shards: 0, parity_shards: 1 };
        assert!(e.to_string().contains("invalid code parameters"));
    }
}
