//! Arithmetic in the finite field GF(2⁸).
//!
//! The field is constructed modulo the primitive polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11D), the same polynomial used by RAID-6 and
//! most Reed–Solomon deployments. Multiplication and inversion go through
//! compile-time log/exp tables, so the hot encode/decode loops are a couple
//! of table lookups per byte.

/// The primitive polynomial (without the x⁸ term) defining the field.
pub const PRIMITIVE_POLY: u16 = 0x11D;

/// `EXP[i] = α^i` for the generator `α = 2`, doubled in length so that
/// multiplication can skip the `% 255` reduction.
const EXP: [u8; 512] = build_exp();
/// `LOG[x]` is the discrete logarithm of `x` (undefined, stored as 0, for
/// `x = 0`).
const LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut table = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Positions 510/511 are never read (log sums are < 510) but keep the
    // table total.
    table[510] = table[0];
    table[511] = table[1];
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

/// Adds two field elements (XOR — addition and subtraction coincide in
/// characteristic 2).
#[inline]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(256)");
    if a == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + 255 - LOG[b as usize] as usize]
    }
}

/// Returns the multiplicative inverse of `a`.
///
/// # Panics
///
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    EXP[255 - LOG[a as usize] as usize]
}

/// Raises `a` to the power `n`.
pub fn pow(a: u8, n: u32) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let log = LOG[a as usize] as u32;
    EXP[((log as u64 * n as u64) % 255) as usize]
}

/// Returns `α^i` for the field generator `α = 2`.
#[inline]
pub fn exp(i: u8) -> u8 {
    EXP[i as usize]
}

/// Length at or above which [`mul_acc_slice`] amortises a 256-byte
/// multiplication table instead of doing two log/exp lookups per byte.
const MUL_TABLE_THRESHOLD: usize = 128;

/// Builds the 256-byte row of the multiplication table for `c`:
/// `table[s] = c * s` (`c != 0`).
#[inline]
fn mul_table(c: u8) -> [u8; 256] {
    let log_c = LOG[c as usize] as usize;
    let mut table = [0u8; 256];
    let mut s = 1usize;
    while s <= 255 {
        table[s] = EXP[log_c + LOG[s] as usize];
        s += 1;
    }
    table
}

/// Multiplies every byte of `src` by `c` and XORs the products into `dst`
/// (`dst[i] ^= c * src[i]`) — the inner loop of Reed–Solomon encoding.
///
/// With the `simd` feature enabled (and a capable CPU) slices of at least
/// 16 bytes go through the nibble-shuffle vector kernels in
/// [`simd`](crate::simd), 16 lanes per instruction. Otherwise, for
/// shard-sized slices the `LOG[c]` row is hoisted into a 256-byte per-call
/// multiplication table: one table build per shard operation, then a
/// single lookup+xor per byte instead of two lookups and a zero-check
/// branch. Short slices keep the direct log/exp path, where the table
/// would cost more than it saves. All paths produce identical bytes.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if c == 0 {
        return;
    }
    #[cfg(feature = "simd")]
    if dst.len() >= 16 && crate::simd::available() {
        crate::simd::mul_acc_slice(dst, src, c);
        return;
    }
    if dst.len() >= MUL_TABLE_THRESHOLD {
        let table = mul_table(c);
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= table[s as usize];
        }
    } else {
        let log_c = LOG[c as usize] as usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            if s != 0 {
                *d ^= EXP[log_c + LOG[s as usize] as usize];
            }
        }
    }
}

/// Multiplies every byte of `data` by `c` in place — the row-scaling step
/// of Gauss–Jordan elimination (matrix inversion and Reed–Solomon
/// reconstruction).
///
/// With the `simd` feature enabled (and a capable CPU) slices of at least
/// 16 bytes go through the same nibble-shuffle vector kernels as
/// [`mul_acc_slice`]; otherwise the scalar log/exp path runs. All paths
/// produce identical bytes.
pub fn mul_slice(data: &mut [u8], c: u8) {
    if c == 0 {
        data.fill(0);
        return;
    }
    if c == 1 {
        return;
    }
    #[cfg(feature = "simd")]
    if data.len() >= 16 && crate::simd::available() {
        crate::simd::mul_slice(data, c);
        return;
    }
    let log_c = LOG[c as usize] as usize;
    for d in data.iter_mut() {
        if *d != 0 {
            *d = EXP[log_c + LOG[*d as usize] as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_consistent() {
        for i in 1..=255u16 {
            let x = i as u8;
            assert_eq!(exp(LOG[x as usize]), x, "exp(log({x})) != {x}");
        }
    }

    #[test]
    fn addition_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        for x in 0..=255u8 {
            assert_eq!(add(x, x), 0, "every element is its own additive inverse");
        }
    }

    #[test]
    fn multiplication_by_zero_and_one() {
        for x in 0..=255u8 {
            assert_eq!(mul(x, 0), 0);
            assert_eq!(mul(0, x), 0);
            assert_eq!(mul(x, 1), x);
            assert_eq!(mul(1, x), x);
        }
    }

    #[test]
    fn multiplication_is_commutative_and_associative() {
        // Spot-check associativity over a stride of triples (the full cube is
        // 16M cases; the stride still covers all byte patterns).
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
                for c in (0..=255u8).step_by(31) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributivity() {
        for a in (0..=255u8).step_by(5) {
            for b in (0..=255u8).step_by(13) {
                for c in (0..=255u8).step_by(17) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverse_and_division() {
        for x in 1..=255u8 {
            assert_eq!(mul(x, inv(x)), 1, "x * x^-1 must be 1 for x={x}");
            assert_eq!(div(x, x), 1);
            assert_eq!(div(0, x), 0);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        div(1, 0);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn inverse_of_zero_panics() {
        inv(0);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 29, 76, 255] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(pow(a, n), acc, "a={a}, n={n}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1, "0^0 = 1 by convention");
    }

    #[test]
    fn generator_has_full_order() {
        // α = 2 must generate all 255 non-zero elements.
        let mut seen = [false; 256];
        let mut x = 1u8;
        for _ in 0..255 {
            assert!(!seen[x as usize], "generator order < 255");
            seen[x as usize] = true;
            x = mul(x, 2);
        }
        assert_eq!(x, 1, "α^255 must wrap to 1");
    }

    #[test]
    fn mul_acc_slice_matches_scalar() {
        let src = [1u8, 2, 3, 0, 255, 17];
        let mut dst = [9u8, 8, 7, 6, 5, 4];
        let expected: Vec<u8> = dst.iter().zip(&src).map(|(&d, &s)| add(d, mul(s, 0x1D))).collect();
        mul_acc_slice(&mut dst, &src, 0x1D);
        assert_eq!(dst.to_vec(), expected);
    }

    #[test]
    fn mul_acc_slice_table_path_matches_scalar() {
        // Long enough to take the table path; covers every byte value.
        let src: Vec<u8> = (0..=255u8).chain(0..=255u8).collect();
        for c in [1u8, 2, 0x1D, 76, 255] {
            let mut dst = vec![0xAAu8; src.len()];
            let expected: Vec<u8> =
                dst.iter().zip(&src).map(|(&d, &s)| add(d, mul(s, c))).collect();
            mul_acc_slice(&mut dst, &src, c);
            assert_eq!(dst, expected, "table path diverges for c={c}");
        }
    }

    #[test]
    fn mul_acc_slice_zero_coefficient_is_noop() {
        let src = [1u8, 2, 3];
        let mut dst = [4u8, 5, 6];
        mul_acc_slice(&mut dst, &src, 0);
        assert_eq!(dst, [4, 5, 6]);
    }

    #[test]
    fn mul_slice_scales_in_place() {
        let mut data = [1u8, 2, 0, 200];
        let expected: Vec<u8> = data.iter().map(|&d| mul(d, 3)).collect();
        mul_slice(&mut data, 3);
        assert_eq!(data.to_vec(), expected);

        let mut zeroed = [5u8, 6];
        mul_slice(&mut zeroed, 0);
        assert_eq!(zeroed, [0, 0]);
    }
}
