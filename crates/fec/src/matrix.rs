//! Dense matrices over GF(256).
//!
//! Just enough linear algebra for erasure coding: construction (identity,
//! Vandermonde), multiplication, row access, sub-matrix extraction and
//! Gauss–Jordan inversion.

use std::fmt;

use crate::gf;

/// A dense row-major matrix over GF(256).
///
/// # Examples
///
/// ```
/// use gossip_fec::matrix::Matrix;
///
/// let id = Matrix::identity(3);
/// let m = Matrix::vandermonde(3, 3);
/// let product = id.mul(&m);
/// assert_eq!(product, m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:02x?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zero(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Creates the n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from rows of equal length.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<u8>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have rows");
        let cols = rows[0].len();
        assert!(
            cols > 0 && rows.iter().all(|r| r.len() == cols),
            "rows must have equal positive length"
        );
        Matrix { rows: rows.len(), cols, data: rows.concat() }
    }

    /// Creates the `rows × cols` Vandermonde matrix `V[r][c] = (r)^(c)`
    /// evaluated in GF(256) (row index as the evaluation point).
    ///
    /// Any `cols` distinct rows of this matrix are linearly independent,
    /// which is the property erasure codes rely on.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, gf::pow(r as u8, c as u32));
            }
        }
        m
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Multiplies `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = gf::mul(a, rhs.get(k, c));
                    out.set(r, c, gf::add(out.get(r, c), prod));
                }
            }
        }
        out
    }

    /// Returns a new matrix made of the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "must select at least one row");
        let mut out = Matrix::zero(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(src < self.rows, "row index out of bounds");
            out.data[dst * self.cols..(dst + 1) * self.cols].copy_from_slice(self.row(src));
        }
        out
    }

    /// Returns the sub-matrix of the first `rows` rows.
    pub fn top_rows(&self, rows: usize) -> Matrix {
        self.select_rows(&(0..rows).collect::<Vec<_>>())
    }

    /// Inverts the matrix by Gauss–Jordan elimination.
    ///
    /// Returns `None` if the matrix is singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices can be inverted");
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot in this column.
            let pivot = (col..n).find(|&r| work.get(r, col) != 0)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale the pivot row to make the pivot 1.
            let scale = gf::inv(work.get(col, col));
            work.scale_row(col, scale);
            inv.scale_row(col, scale);
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = work.get(r, col);
                if factor != 0 {
                    work.add_scaled_row(r, col, factor);
                    inv.add_scaled_row(r, col, factor);
                }
            }
        }
        Some(inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, factor: u8) {
        gf::mul_slice(&mut self.data[r * self.cols..(r + 1) * self.cols], factor);
    }

    /// `row[dst] ^= factor * row[src]`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: u8) {
        debug_assert_ne!(dst, src, "cannot eliminate a row against itself");
        let src_copy: Vec<u8> = self.row(src).to_vec();
        let dst_slice = &mut self.data[dst * self.cols..(dst + 1) * self.cols];
        gf::mul_acc_slice(dst_slice, &src_copy, factor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_multiplication_is_neutral() {
        let v = Matrix::vandermonde(4, 4);
        assert_eq!(Matrix::identity(4).mul(&v), v);
        assert_eq!(v.mul(&Matrix::identity(4)), v);
    }

    #[test]
    fn vandermonde_square_is_invertible() {
        for n in 1..12 {
            let v = Matrix::vandermonde(n, n);
            let inv = v.inverse().expect("square Vandermonde with distinct points is invertible");
            assert_eq!(v.mul(&inv), Matrix::identity(n));
            assert_eq!(inv.mul(&v), Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        // Two identical rows.
        let m = Matrix::from_rows(&[vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        let zero = Matrix::zero(3, 3);
        assert!(zero.inverse().is_none());
    }

    #[test]
    fn any_k_rows_of_tall_vandermonde_are_independent() {
        // The defining property for erasure codes: pick arbitrary subsets.
        let v = Matrix::vandermonde(10, 4);
        let subsets: [[usize; 4]; 5] =
            [[0, 1, 2, 3], [6, 7, 8, 9], [0, 3, 5, 9], [1, 4, 6, 8], [2, 3, 7, 9]];
        for subset in subsets {
            let sub = v.select_rows(&subset);
            assert!(sub.inverse().is_some(), "rows {subset:?} should be independent");
        }
    }

    #[test]
    fn select_and_top_rows() {
        let v = Matrix::vandermonde(5, 3);
        let top = v.top_rows(2);
        assert_eq!(top.rows(), 2);
        assert_eq!(top.row(1), v.row(1));
        let picked = v.select_rows(&[4, 0]);
        assert_eq!(picked.row(0), v.row(4));
        assert_eq!(picked.row(1), v.row(0));
    }

    #[test]
    fn mul_matches_manual_example() {
        // [1 1; 0 1] * [a; b] = [a^b; b] in GF(256).
        let m = Matrix::from_rows(&[vec![1, 1], vec![0, 1]]);
        let v = Matrix::from_rows(&[vec![0x53], vec![0xCA]]);
        let out = m.mul(&v);
        assert_eq!(out.get(0, 0), 0x53 ^ 0xCA);
        assert_eq!(out.get(1, 0), 0xCA);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let m = Matrix::from_rows(&rows);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(0), &[1, 2, 3]);
        assert_eq!(m.row(1), &[4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "equal positive length")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[vec![1], vec![2, 3]]);
    }

    #[test]
    fn debug_output_mentions_shape() {
        let m = Matrix::identity(2);
        let s = format!("{m:?}");
        assert!(s.contains("2x2"), "debug should mention shape: {s}");
    }

    #[test]
    fn elimination_with_dst_above_src() {
        // Force the dst < src branch of add_scaled_row via inversion of a
        // matrix needing upward elimination.
        let m = Matrix::from_rows(&[vec![2, 1, 0], vec![1, 2, 1], vec![0, 1, 2]]);
        let inv = m.inverse().expect("invertible");
        assert_eq!(m.mul(&inv), Matrix::identity(3));
    }
}
