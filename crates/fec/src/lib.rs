//! Systematic Reed–Solomon erasure coding over GF(256).
//!
//! The paper's source groups the stream into windows of 110 packets of which
//! 9 are FEC parity, using a *systematic* code: the first 101 packets are the
//! original data, and any 101 of the 110 suffice to reconstruct the window.
//! This crate implements that code for real — finite-field arithmetic
//! ([`gf`]), matrix algebra ([`matrix`]), the erasure codec ([`ReedSolomon`])
//! and the window-level convenience wrappers ([`WindowEncoder`] /
//! [`WindowDecoder`]) used by the streaming layer and the UDP runtime.
//!
//! # Examples
//!
//! Encode four data shards with two parity shards and recover from the loss
//! of any two:
//!
//! ```
//! use gossip_fec::ReedSolomon;
//!
//! # fn main() -> Result<(), gossip_fec::FecError> {
//! let rs = ReedSolomon::new(4, 2)?;
//! let data: Vec<Vec<u8>> = vec![vec![1, 2], vec![3, 4], vec![5, 6], vec![7, 8]];
//! let parity = rs.encode(&data)?;
//!
//! // Lose shards 0 (data) and 4 (parity):
//! let mut shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
//! shards.extend(parity.into_iter().map(Some));
//! shards[0] = None;
//! shards[4] = None;
//!
//! rs.reconstruct(&mut shards)?;
//! assert_eq!(shards[0].as_deref(), Some(&[1u8, 2][..]));
//! # Ok(())
//! # }
//! ```

// Without the `simd` feature the crate is entirely safe code; with it, the
// `unsafe` is confined to the intrinsics in [`simd`] (which opts in with a
// module-level `allow`).
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod gf;
pub mod matrix;

#[cfg(feature = "simd")]
pub mod simd;

mod rs;
mod window;

pub use rs::{FecError, ReedSolomon};
pub use window::{WindowDecoder, WindowEncoder, WindowParams};
