//! Vectorised GF(256) kernels (the `simd` feature).
//!
//! The classic nibble-shuffle technique: a multiplication by a fixed
//! coefficient `c` is a byte-wise table lookup, and a 256-entry lookup
//! splits into two 16-entry lookups by nibble —
//! `c·x = c·(x_hi·16) ⊕ c·x_lo` — because multiplication distributes over
//! the field's carry-less addition. 16-entry lookups are exactly what the
//! SSSE3 `PSHUFB` / NEON `TBL` byte-shuffle instructions compute, 16 lanes
//! at a time.
//!
//! The per-coefficient low/high nibble product tables are precomputed at
//! compile time for all 256 coefficients (8 KiB total), so a kernel
//! invocation is: load the two 16-byte tables, then per 16-byte block two
//! shuffles, two masks and two XORs.
//!
//! The scalar path in [`gf`](crate::gf) remains the reference; the unit
//! and property tests assert byte-identical results for every coefficient
//! and slice geometry. x86-64 detects SSSE3 at runtime (first call) and
//! falls back to scalar if unavailable; NEON is baseline on AArch64.

#![allow(unsafe_code)]

/// Carry-less ("Russian peasant") GF(256) multiply, usable in const
/// context; only used at compile time to build the shuffle tables.
const fn gf_mul_const(mut a: u8, mut b: u8) -> u8 {
    let mut product = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            product ^= a;
        }
        let carry = a & 0x80;
        a <<= 1;
        if carry != 0 {
            a ^= (super::gf::PRIMITIVE_POLY & 0xFF) as u8;
        }
        b >>= 1;
    }
    product
}

/// `MUL_LO[c][x] = c · x` for `x` in `0..16` (low-nibble products).
static MUL_LO: [[u8; 16]; 256] = build_tables(false);
/// `MUL_HI[c][x] = c · (x << 4)` for `x` in `0..16` (high-nibble products).
static MUL_HI: [[u8; 16]; 256] = build_tables(true);

const fn build_tables(high: bool) -> [[u8; 16]; 256] {
    let mut tables = [[0u8; 16]; 256];
    let mut c = 0usize;
    while c < 256 {
        let mut x = 0usize;
        while x < 16 {
            let operand = if high { (x << 4) as u8 } else { x as u8 };
            tables[c][x] = gf_mul_const(c as u8, operand);
            x += 1;
        }
        c += 1;
    }
    tables
}

/// Returns `true` if the vector kernels can run on this CPU.
///
/// AArch64 always can (NEON is baseline); x86-64 requires SSSE3, probed
/// once and cached by the standard library's feature-detection macro.
#[inline]
pub fn available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("ssse3")
    }
    #[cfg(target_arch = "aarch64")]
    {
        true
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

/// Vectorised `dst[i] ^= c * src[i]`.
///
/// Both slices must have the same length; any `c` works (the `c = 0`
/// tables are all zeros, making the call a no-op, though the dispatcher in
/// [`gf`](crate::gf) short-circuits that case earlier). On CPUs without
/// the required vector extension — checked here, so the function is sound
/// to call directly; the detection macro caches — and for the sub-16-byte
/// tail of any slice, the same split tables are applied byte by byte.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_acc_slice(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "slice length mismatch");
    if !available() {
        mul_acc_tail(dst, src, c);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `available()` confirmed SSSE3 support just above.
        unsafe { mul_acc_ssse3(dst, src, c) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the AArch64 baseline.
        unsafe { mul_acc_neon(dst, src, c) }
    }
}

/// Vectorised in-place scaling `data[i] = c * data[i]` — the decode-side
/// counterpart of [`mul_acc_slice`], used by Gauss–Jordan row scaling in
/// [`matrix`](crate::matrix) (inversion and reconstruction).
///
/// Same nibble-shuffle scheme as the accumulate kernel, minus the XOR with
/// the destination: the product simply overwrites. Any `c` works (the
/// `c = 0` tables zero the slice), though the dispatcher in
/// [`gf`](crate::gf) short-circuits `c ∈ {0, 1}` earlier.
#[inline]
pub fn mul_slice(data: &mut [u8], c: u8) {
    if !available() {
        mul_tail(data, c);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `available()` confirmed SSSE3 support just above.
        unsafe { mul_ssse3(data, c) }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // SAFETY: NEON is part of the AArch64 baseline.
        unsafe { mul_neon(data, c) }
    }
}

/// Scalar fallback for the sub-16-byte tail of a vectorised call: one
/// lookup per byte through the same compile-time split tables.
#[inline]
fn mul_acc_tail(dst: &mut [u8], src: &[u8], c: u8) {
    let lo = &MUL_LO[c as usize];
    let hi = &MUL_HI[c as usize];
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= lo[(s & 0x0F) as usize] ^ hi[(s >> 4) as usize];
    }
}

/// Scalar tail of the in-place scaling kernel.
#[inline]
fn mul_tail(data: &mut [u8], c: u8) {
    let lo = &MUL_LO[c as usize];
    let hi = &MUL_HI[c as usize];
    for d in data.iter_mut() {
        *d = lo[(*d & 0x0F) as usize] ^ hi[(*d >> 4) as usize];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], c: u8) {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi64,
        _mm_storeu_si128, _mm_xor_si128,
    };

    // SAFETY (whole function): loads/stores are unaligned-tolerant
    // (`loadu`/`storeu`) and every pointer stays within the chunk bounds
    // established by `chunks_exact`.
    unsafe {
        let table_lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast::<__m128i>());
        let table_hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast::<__m128i>());
        let nibble_mask = _mm_set1_epi8(0x0F);

        let mut dst_chunks = dst.chunks_exact_mut(16);
        let mut src_chunks = src.chunks_exact(16);
        for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
            let x = _mm_loadu_si128(s.as_ptr().cast::<__m128i>());
            let lo = _mm_and_si128(x, nibble_mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), nibble_mask);
            let product =
                _mm_xor_si128(_mm_shuffle_epi8(table_lo, lo), _mm_shuffle_epi8(table_hi, hi));
            let acc = _mm_loadu_si128(d.as_ptr().cast::<__m128i>());
            _mm_storeu_si128(d.as_mut_ptr().cast::<__m128i>(), _mm_xor_si128(acc, product));
        }
        mul_acc_tail(dst_chunks.into_remainder(), src_chunks.remainder(), c);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_ssse3(data: &mut [u8], c: u8) {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi64,
        _mm_storeu_si128, _mm_xor_si128,
    };

    // SAFETY (whole function): loads/stores are unaligned-tolerant
    // (`loadu`/`storeu`) and every pointer stays within the chunk bounds
    // established by `chunks_exact`.
    unsafe {
        let table_lo = _mm_loadu_si128(MUL_LO[c as usize].as_ptr().cast::<__m128i>());
        let table_hi = _mm_loadu_si128(MUL_HI[c as usize].as_ptr().cast::<__m128i>());
        let nibble_mask = _mm_set1_epi8(0x0F);

        let mut chunks = data.chunks_exact_mut(16);
        for d in chunks.by_ref() {
            let x = _mm_loadu_si128(d.as_ptr().cast::<__m128i>());
            let lo = _mm_and_si128(x, nibble_mask);
            let hi = _mm_and_si128(_mm_srli_epi64::<4>(x), nibble_mask);
            let product =
                _mm_xor_si128(_mm_shuffle_epi8(table_lo, lo), _mm_shuffle_epi8(table_hi, hi));
            _mm_storeu_si128(d.as_mut_ptr().cast::<__m128i>(), product);
        }
        mul_tail(chunks.into_remainder(), c);
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn mul_neon(data: &mut [u8], c: u8) {
    use std::arch::aarch64::{
        vandq_u8, vdupq_n_u8, veorq_u8, vld1q_u8, vqtbl1q_u8, vshrq_n_u8, vst1q_u8,
    };

    // SAFETY (whole function): `vld1q_u8`/`vst1q_u8` have no alignment
    // requirement and every pointer stays within the chunk bounds
    // established by `chunks_exact`.
    unsafe {
        let table_lo = vld1q_u8(MUL_LO[c as usize].as_ptr());
        let table_hi = vld1q_u8(MUL_HI[c as usize].as_ptr());
        let nibble_mask = vdupq_n_u8(0x0F);

        let mut chunks = data.chunks_exact_mut(16);
        for d in chunks.by_ref() {
            let x = vld1q_u8(d.as_ptr());
            let lo = vandq_u8(x, nibble_mask);
            let hi = vshrq_n_u8::<4>(x);
            let product = veorq_u8(vqtbl1q_u8(table_lo, lo), vqtbl1q_u8(table_hi, hi));
            vst1q_u8(d.as_mut_ptr(), product);
        }
        mul_tail(chunks.into_remainder(), c);
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn mul_acc_neon(dst: &mut [u8], src: &[u8], c: u8) {
    use std::arch::aarch64::{
        vandq_u8, vdupq_n_u8, veorq_u8, vld1q_u8, vqtbl1q_u8, vshrq_n_u8, vst1q_u8,
    };

    // SAFETY (whole function): `vld1q_u8`/`vst1q_u8` have no alignment
    // requirement and every pointer stays within the chunk bounds
    // established by `chunks_exact`.
    unsafe {
        let table_lo = vld1q_u8(MUL_LO[c as usize].as_ptr());
        let table_hi = vld1q_u8(MUL_HI[c as usize].as_ptr());
        let nibble_mask = vdupq_n_u8(0x0F);

        let mut dst_chunks = dst.chunks_exact_mut(16);
        let mut src_chunks = src.chunks_exact(16);
        for (d, s) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
            let x = vld1q_u8(s.as_ptr());
            let lo = vandq_u8(x, nibble_mask);
            let hi = vshrq_n_u8::<4>(x);
            let product = veorq_u8(vqtbl1q_u8(table_lo, lo), vqtbl1q_u8(table_hi, hi));
            let acc = vld1q_u8(d.as_ptr());
            vst1q_u8(d.as_mut_ptr(), veorq_u8(acc, product));
        }
        mul_acc_tail(dst_chunks.into_remainder(), src_chunks.remainder(), c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf;

    #[test]
    fn const_tables_match_log_exp_multiplication() {
        for c in 0..=255u8 {
            for x in 0..16u8 {
                assert_eq!(MUL_LO[c as usize][x as usize], gf::mul(c, x), "lo c={c} x={x}");
                assert_eq!(MUL_HI[c as usize][x as usize], gf::mul(c, x << 4), "hi c={c} x={x}");
            }
        }
    }

    #[test]
    fn vector_path_matches_scalar_for_all_coefficients_and_odd_lengths() {
        if !available() {
            eprintln!("skipping: no SSSE3/NEON on this CPU");
            return;
        }
        // Odd lengths exercise the head (full 16-byte blocks) and the
        // remainder tail; every byte value appears in the source.
        for &len in &[1usize, 7, 15, 16, 17, 31, 32, 33, 63, 100, 255, 256, 257, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            for c in 1..=255u8 {
                let mut vec_dst: Vec<u8> = (0..len).map(|i| (i * 17 + 3) as u8).collect();
                let mut ref_dst = vec_dst.clone();
                mul_acc_slice(&mut vec_dst, &src, c);
                for (d, &s) in ref_dst.iter_mut().zip(&src) {
                    *d = gf::add(*d, gf::mul(s, c));
                }
                assert_eq!(vec_dst, ref_dst, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn scaling_path_matches_scalar_for_all_coefficients_and_odd_lengths() {
        if !available() {
            eprintln!("skipping: no SSSE3/NEON on this CPU");
            return;
        }
        for &len in &[1usize, 7, 15, 16, 17, 31, 32, 33, 63, 100, 255, 256, 257, 1000] {
            for c in 0..=255u8 {
                let mut vec_data: Vec<u8> = (0..len).map(|i| (i * 29 + 11) as u8).collect();
                let mut ref_data = vec_data.clone();
                mul_slice(&mut vec_data, c);
                for d in ref_data.iter_mut() {
                    *d = gf::mul(*d, c);
                }
                assert_eq!(vec_data, ref_data, "c={c} len={len}");
            }
        }
    }

    #[test]
    fn scaling_tail_uses_the_split_tables() {
        let mut data = [0xABu8, 0x01, 0xF0];
        let mut expected = data;
        for d in expected.iter_mut() {
            *d = gf::mul(*d, 0x1D);
        }
        mul_tail(&mut data, 0x1D);
        assert_eq!(data, expected);
    }

    #[test]
    fn tail_only_slices_use_the_split_tables() {
        let src = [0xABu8, 0x01, 0xF0];
        let mut dst = [0x11u8, 0x22, 0x33];
        let mut expected = dst;
        for (d, &s) in expected.iter_mut().zip(&src) {
            *d = gf::add(*d, gf::mul(s, 0x1D));
        }
        mul_acc_tail(&mut dst, &src, 0x1D);
        assert_eq!(dst, expected);
    }
}
