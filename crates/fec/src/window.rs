//! Window-level FEC wrappers.
//!
//! The streaming layer deals in *windows*: fixed groups of packets where the
//! first `k` carry stream data and the remaining `r` carry parity
//! ([`WindowParams`], paper default `k = 101`, `r = 9`). [`WindowEncoder`]
//! turns a window's worth of data packets into parity packets at the source;
//! [`WindowDecoder`] accumulates whatever packets arrive at a receiver (in
//! any order) and reconstructs the data once any `k` distinct packets are
//! in.

use std::fmt;

use crate::rs::{FecError, ReedSolomon};

/// The FEC geometry of a stream window.
///
/// # Examples
///
/// ```
/// use gossip_fec::WindowParams;
///
/// let p = WindowParams::paper_default();
/// assert_eq!(p.data_packets, 101);
/// assert_eq!(p.fec_packets, 9);
/// assert_eq!(p.total_packets(), 110);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowParams {
    /// Number of data packets per window (`k`).
    pub data_packets: usize,
    /// Number of parity packets per window (`r`).
    pub fec_packets: usize,
}

impl WindowParams {
    /// The configuration used throughout the paper: windows of 110 packets
    /// including 9 FEC-coded packets.
    pub const fn paper_default() -> Self {
        WindowParams { data_packets: 101, fec_packets: 9 }
    }

    /// Creates a custom geometry.
    pub const fn new(data_packets: usize, fec_packets: usize) -> Self {
        WindowParams { data_packets, fec_packets }
    }

    /// Total packets per window (`k + r`).
    pub const fn total_packets(&self) -> usize {
        self.data_packets + self.fec_packets
    }

    /// Whether a window with `present` distinct packets can be fully
    /// reconstructed.
    pub const fn is_decodable(&self, present: usize) -> bool {
        present >= self.data_packets
    }
}

impl Default for WindowParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Encodes one window of data packets into parity packets.
///
/// # Examples
///
/// ```
/// use gossip_fec::{WindowEncoder, WindowParams};
///
/// # fn main() -> Result<(), gossip_fec::FecError> {
/// let enc = WindowEncoder::new(WindowParams::new(4, 2))?;
/// let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
/// let parity = enc.encode(&data)?;
/// assert_eq!(parity.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct WindowEncoder {
    params: WindowParams,
    rs: ReedSolomon,
}

impl WindowEncoder {
    /// Creates an encoder for the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidParams`] for unusable geometries (zero data
    /// packets or more than 256 total).
    pub fn new(params: WindowParams) -> Result<Self, FecError> {
        let rs = ReedSolomon::new(params.data_packets, params.fec_packets)?;
        Ok(WindowEncoder { params, rs })
    }

    /// Returns the geometry.
    pub fn params(&self) -> WindowParams {
        self.params
    }

    /// Computes the parity packets for one window of data packets.
    ///
    /// # Errors
    ///
    /// Propagates the geometry errors of [`ReedSolomon::encode`].
    pub fn encode<S: AsRef<[u8]>>(&self, data: &[S]) -> Result<Vec<Vec<u8>>, FecError> {
        self.rs.encode(data)
    }
}

/// Accumulates received packets of one window and reconstructs the data.
///
/// Duplicate packets are ignored; packets may arrive in any order. Once
/// [`WindowDecoder::is_decodable`] is true, [`WindowDecoder::reconstruct`]
/// returns the `k` original data packets.
pub struct WindowDecoder {
    params: WindowParams,
    rs: ReedSolomon,
    shards: Vec<Option<Vec<u8>>>,
    received: usize,
}

impl fmt::Debug for WindowDecoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowDecoder")
            .field("params", &self.params)
            .field("received", &self.received)
            .finish()
    }
}

impl WindowDecoder {
    /// Creates an empty decoder for the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::InvalidParams`] for unusable geometries.
    pub fn new(params: WindowParams) -> Result<Self, FecError> {
        let rs = ReedSolomon::new(params.data_packets, params.fec_packets)?;
        Ok(WindowDecoder { params, rs, shards: vec![None; params.total_packets()], received: 0 })
    }

    /// Records the arrival of packet `index` of the window. Returns `true`
    /// if the packet was new.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the window.
    pub fn receive(&mut self, index: usize, payload: Vec<u8>) -> bool {
        assert!(index < self.params.total_packets(), "packet index outside window");
        if self.shards[index].is_some() {
            return false;
        }
        self.shards[index] = Some(payload);
        self.received += 1;
        true
    }

    /// Returns how many distinct packets have been received.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Returns whether enough packets are in to reconstruct the window.
    pub fn is_decodable(&self) -> bool {
        self.params.is_decodable(self.received)
    }

    /// Reconstructs and returns the `k` data packets.
    ///
    /// # Errors
    ///
    /// Returns [`FecError::TooFewShards`] when fewer than `k` packets have
    /// been received, or [`FecError::ShardSizeMismatch`] if received packets
    /// disagree in size.
    pub fn reconstruct(mut self) -> Result<Vec<Vec<u8>>, FecError> {
        self.rs.reconstruct(&mut self.shards)?;
        Ok(self
            .shards
            .into_iter()
            .take(self.params.data_packets)
            .map(|s| s.expect("reconstruct fills all shards"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window_data(params: WindowParams, len: usize) -> Vec<Vec<u8>> {
        (0..params.data_packets)
            .map(|i| (0..len).map(|j| ((i * 131 + j * 17 + 7) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn encode_then_decode_with_losses() {
        let params = WindowParams::new(10, 4);
        let enc = WindowEncoder::new(params).unwrap();
        let data = window_data(params, 24);
        let parity = enc.encode(&data).unwrap();

        let mut dec = WindowDecoder::new(params).unwrap();
        // Deliver out of order, losing packets 1, 5, 8 and parity 12.
        for (i, shard) in data.iter().enumerate().rev() {
            if [1, 5, 8].contains(&i) {
                continue;
            }
            assert!(dec.receive(i, shard.clone()));
        }
        for (p, shard) in parity.iter().enumerate() {
            if p == 2 {
                continue; // index 12 lost
            }
            dec.receive(params.data_packets + p, shard.clone());
        }
        assert!(dec.is_decodable());
        assert_eq!(dec.received(), 10);
        let recovered = dec.reconstruct().unwrap();
        assert_eq!(recovered, data);
    }

    #[test]
    fn duplicates_do_not_inflate_count() {
        let params = WindowParams::new(3, 1);
        let mut dec = WindowDecoder::new(params).unwrap();
        assert!(dec.receive(0, vec![1]));
        assert!(!dec.receive(0, vec![1]));
        assert_eq!(dec.received(), 1);
    }

    #[test]
    fn not_decodable_below_threshold() {
        let params = WindowParams::paper_default();
        let mut dec = WindowDecoder::new(params).unwrap();
        for i in 0..100 {
            dec.receive(i, vec![0u8; 4]);
        }
        assert!(!dec.is_decodable());
        dec.receive(105, vec![0u8; 4]); // a parity packet tips it over
        assert!(dec.is_decodable());
    }

    #[test]
    fn reconstruct_too_few_fails() {
        let params = WindowParams::new(4, 2);
        let mut dec = WindowDecoder::new(params).unwrap();
        dec.receive(0, vec![0u8; 2]);
        let err = dec.reconstruct().unwrap_err();
        assert!(matches!(err, FecError::TooFewShards { have: 1, need: 4 }));
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn out_of_range_index_panics() {
        let params = WindowParams::new(2, 1);
        let mut dec = WindowDecoder::new(params).unwrap();
        dec.receive(3, vec![]);
    }

    #[test]
    fn params_helpers() {
        let p = WindowParams::default();
        assert_eq!(p, WindowParams::paper_default());
        assert!(p.is_decodable(101));
        assert!(!p.is_decodable(100));
        assert_eq!(WindowParams::new(5, 0).total_packets(), 5);
    }
}
