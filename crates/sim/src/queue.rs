//! The timestamped event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that provides the
//! two things a deterministic simulator needs beyond a plain heap:
//!
//! 1. **a stable total order** — events at equal times pop in insertion
//!    order, so the simulation schedule does not depend on heap internals;
//! 2. **cancellation** — scheduling returns an [`EventHandle`] that can later
//!    cancel the event in O(1) (tombstoning; the entry is skipped on pop).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use gossip_types::Time;

/// A handle to a scheduled event, usable to cancel it.
///
/// Handles are unique per queue for the lifetime of the queue (a `u64`
/// sequence number), so a handle never aliases a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, with the
        // insertion sequence breaking ties so ordering is total and stable.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with stable ordering and
/// cancellation.
///
/// # Examples
///
/// ```
/// use gossip_sim::EventQueue;
/// use gossip_types::Time;
///
/// let mut q = EventQueue::new();
/// let h = q.push(Time::from_secs(1), "late");
/// q.push(Time::from_millis(1), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "early")));
/// assert_eq!(q.pop(), None); // "late" was cancelled
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("cancelled", &self.cancelled.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), cancelled: HashSet::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at` and returns a cancellation handle.
    pub fn push(&mut self, at: Time, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// no-op; the method returns whether the tombstone was newly planted
    /// against a *possibly* pending event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(handle.0)
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Returns the timestamp of the earliest pending (non-cancelled) event
    /// without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Returns the number of entries in the heap, *including* cancelled
    /// entries that have not been reaped yet.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_types::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3), 'c');
        q.push(Time::from_secs(1), 'a');
        q.push(Time::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let h1 = q.push(Time::from_secs(1), 1);
        let h2 = q.push(Time::from_secs(2), 2);
        q.push(Time::from_secs(3), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double-cancel is a no-op");
        assert!(q.cancel(h1));
        assert_eq!(q.pop(), Some((Time::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(Time::from_secs(1), 'x');
        q.push(Time::from_secs(2), 'y');
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.pop(), Some((Time::from_secs(2), 'y')));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.push(Time::from_secs(1), 0);
        q.push(Time::from_secs(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let base = Time::ZERO;
        q.push(base + Duration::from_millis(10), 10);
        q.push(base + Duration::from_millis(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(base + Duration::from_millis(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
