//! The timestamped event queue.
//!
//! A slab-backed, indexed d-ary min-heap that provides the two things a
//! deterministic simulator needs beyond a plain priority queue:
//!
//! 1. **a stable total order** — events at equal times pop in insertion
//!    order, so the simulation schedule does not depend on heap internals;
//! 2. **true cancellation** — scheduling returns an [`EventHandle`] (a
//!    slot + generation pair) that removes the entry from the heap
//!    immediately. There are no tombstones: cancelled entries never linger,
//!    [`EventQueue::len`] is always exact, and stale handles (already
//!    popped or already cancelled) are rejected by the generation check.
//!
//! Internally the heap orders `u32` slot indices, so sift operations move
//! 4-byte integers instead of whole events; event payloads stay put in
//! their slots. The 4-ary layout halves the tree depth of a binary heap,
//! which matters on the simulator's hot path where every dispatched event
//! is one pop and most dispatches schedule a follow-up push.

use gossip_types::Time;

/// Heap arity. Four children per node: shallower trees (fewer cache misses
/// per sift) at the cost of more comparisons per level — the classic win
/// for pop-heavy workloads.
const ARITY: usize = 4;

/// A handle to a scheduled event, usable to cancel it.
///
/// A handle names a slot plus the generation the slot had when the event
/// was pushed. Slots are recycled, generations only grow: a handle whose
/// event already popped (or was already cancelled) fails the generation
/// check and is rejected, so a handle never aliases a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

struct Slot<E> {
    /// Bumped every time the slot is freed; handles carry the generation
    /// they were issued under.
    generation: u32,
    /// Position of this slot's entry in `heap` (only meaningful while the
    /// slot is occupied).
    pos: u32,
    at: Time,
    /// Insertion sequence number: the tie-break making the order total.
    seq: u64,
    event: Option<E>,
}

/// A priority queue of timestamped events with stable ordering and indexed
/// cancellation.
///
/// # Examples
///
/// ```
/// use gossip_sim::EventQueue;
/// use gossip_types::Time;
///
/// let mut q = EventQueue::new();
/// let h = q.push(Time::from_secs(1), "late");
/// q.push(Time::from_millis(1), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "early")));
/// assert_eq!(q.pop(), None); // "late" was cancelled
/// ```
pub struct EventQueue<E> {
    /// The d-ary min-heap of slot indices, ordered by `(at, seq)`.
    heap: Vec<u32>,
    slots: Vec<Slot<E>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("slots", &self.slots.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free: Vec::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at` and returns a cancellation handle.
    pub fn push(&mut self, at: Time, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.at = at;
                s.seq = seq;
                s.event = Some(event);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Slot { generation: 0, pos: 0, at, seq, event: Some(event) });
                slot
            }
        };
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].pos = pos as u32;
        self.sift_up(pos);
        EventHandle { slot, generation: self.slots[slot as usize].generation }
    }

    /// Cancels a previously scheduled event, removing it from the heap
    /// immediately.
    ///
    /// Returns whether a pending event was actually removed. Handles whose
    /// event already popped — or was already cancelled — fail the
    /// generation check and are a no-op, so `len()` stays exact no matter
    /// how callers misuse stale handles.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slots.get(handle.slot as usize) else {
            return false;
        };
        if slot.generation != handle.generation || slot.event.is_none() {
            return false;
        }
        let pos = slot.pos as usize;
        self.remove_heap_entry(pos);
        self.release(handle.slot);
        true
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let slot = *self.heap.first()?;
        self.remove_heap_entry(0);
        let (at, event) = self.release(slot);
        Some((at, event.expect("occupied slot holds an event")))
    }

    /// Removes and returns the earliest pending event if it is due at or
    /// before `horizon`; leaves the queue untouched otherwise.
    ///
    /// This is the driver-loop primitive: one heap traversal per dispatched
    /// event instead of a `peek_time` followed by a `pop`.
    pub fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        let slot = *self.heap.first()?;
        if self.slots[slot as usize].at > horizon {
            return None;
        }
        self.remove_heap_entry(0);
        let (at, event) = self.release(slot);
        Some((at, event.expect("occupied slot holds an event")))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|&slot| self.slots[slot as usize].at)
    }

    /// Returns the exact number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Frees a slot (bumping its generation so outstanding handles die) and
    /// returns its timestamp and event.
    fn release(&mut self, slot: u32) -> (Time, Option<E>) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        let event = s.event.take();
        let at = s.at;
        self.free.push(slot);
        (at, event)
    }

    /// `(at, seq)` sort key of the slot behind heap position `i`.
    #[inline]
    fn key(&self, i: usize) -> (Time, u64) {
        let s = &self.slots[self.heap[i] as usize];
        (s.at, s.seq)
    }

    /// Writes `slot` into heap position `i`, keeping the back-pointer in
    /// sync.
    #[inline]
    fn place(&mut self, i: usize, slot: u32) {
        self.heap[i] = slot;
        self.slots[slot as usize].pos = i as u32;
    }

    /// Removes the heap entry at position `pos` (swap with the last entry,
    /// then restore the heap property for the moved entry).
    fn remove_heap_entry(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos == last {
            self.heap.pop();
            return;
        }
        let moved = self.heap[last];
        self.heap.pop();
        self.place(pos, moved);
        // The moved entry came from the bottom; it can only need to go
        // down, unless the removal point was below its correct position
        // (possible when removing from the middle of the heap).
        if pos > 0 && self.key(pos) < self.key((pos - 1) / ARITY) {
            self.sift_up(pos);
        } else {
            self.sift_down(pos);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let slot = self.heap[i];
        let key = {
            let s = &self.slots[slot as usize];
            (s.at, s.seq)
        };
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.key(parent) {
                let p = self.heap[parent];
                self.place(i, p);
                i = parent;
            } else {
                break;
            }
        }
        self.place(i, slot);
    }

    fn sift_down(&mut self, mut i: usize) {
        let slot = self.heap[i];
        let key = {
            let s = &self.slots[slot as usize];
            (s.at, s.seq)
        };
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut min_child = first_child;
            let mut min_key = self.key(first_child);
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                let k = self.key(c);
                if k < min_key {
                    min_key = k;
                    min_child = c;
                }
            }
            if min_key < key {
                let m = self.heap[min_child];
                self.place(i, m);
                i = min_child;
            } else {
                break;
            }
        }
        self.place(i, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_types::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(3), 'c');
        q.push(Time::from_secs(1), 'a');
        q.push(Time::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let h1 = q.push(Time::from_secs(1), 1);
        let h2 = q.push(Time::from_secs(2), 2);
        q.push(Time::from_secs(3), 3);
        assert!(q.cancel(h2));
        assert!(!q.cancel(h2), "double-cancel is a no-op");
        assert!(q.cancel(h1));
        assert_eq!(q.pop(), Some((Time::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle { slot: 99, generation: 0 }));
    }

    #[test]
    fn cancel_after_pop_is_rejected_and_len_stays_exact() {
        // Regression test: with the old tombstone design, cancelling an
        // already-popped handle planted a tombstone that was never reaped,
        // so `len()` (`heap.len() - cancelled.len()`) underflowed once the
        // heap drained.
        let mut q = EventQueue::new();
        let h = q.push(Time::from_secs(1), 'x');
        assert_eq!(q.pop(), Some((Time::from_secs(1), 'x')));
        assert!(!q.cancel(h), "handle of a popped event must be stale");
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        // The queue remains fully usable.
        q.push(Time::from_secs(2), 'y');
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_secs(2), 'y')));
    }

    #[test]
    fn recycled_slot_does_not_honour_old_handles() {
        let mut q = EventQueue::new();
        let h1 = q.push(Time::from_secs(1), 1);
        assert!(q.cancel(h1));
        // The slot is recycled for a new event; the old handle must not be
        // able to cancel it.
        let h2 = q.push(Time::from_secs(2), 2);
        assert!(!q.cancel(h1), "stale handle must not cancel the recycled slot");
        assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
        assert!(!q.cancel(h2));
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        let h = q.push(Time::from_secs(1), 'x');
        q.push(Time::from_secs(2), 'y');
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.pop(), Some((Time::from_secs(2), 'y')));
    }

    #[test]
    fn pop_before_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.push(Time::from_secs(1), 'a');
        q.push(Time::from_secs(2), 'b');
        q.push(Time::from_secs(3), 'c');
        assert_eq!(q.pop_before(Time::from_secs(2)), Some((Time::from_secs(1), 'a')));
        assert_eq!(q.pop_before(Time::from_secs(2)), Some((Time::from_secs(2), 'b')), "inclusive");
        assert_eq!(q.pop_before(Time::from_secs(2)), None, "later events stay queued");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_secs(3), 'c')));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let h = q.push(Time::from_secs(1), 0);
        q.push(Time::from_secs(2), 1);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        let base = Time::ZERO;
        q.push(base + Duration::from_millis(10), 10);
        q.push(base + Duration::from_millis(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(base + Duration::from_millis(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }

    #[test]
    fn heavy_cancel_churn_keeps_heap_consistent() {
        // Cancel from the middle of a large heap repeatedly; every survivor
        // must still pop in exact (time, insertion) order.
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..500u64 {
            handles.push((i, q.push(Time::from_micros(i * 37 % 1000), i)));
        }
        let mut cancelled = std::collections::HashSet::new();
        for &(i, h) in handles.iter().step_by(3) {
            assert!(q.cancel(h));
            cancelled.insert(i);
        }
        assert_eq!(q.len(), 500 - cancelled.len());
        let mut popped = Vec::new();
        while let Some((at, i)) = q.pop() {
            assert!(!cancelled.contains(&i), "cancelled event {i} must not pop");
            popped.push((at, i));
        }
        assert_eq!(popped.len(), 500 - cancelled.len());
        for w in popped.windows(2) {
            assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }
}
