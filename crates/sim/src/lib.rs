//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate every simulated experiment runs on. It offers:
//!
//! * [`EventQueue`] — a timestamped event queue with a stable total order
//!   (ties broken by insertion sequence) and tombstone-free cancellation via
//!   slot+generation handles. The default implementation is a bucketed
//!   [`CalendarQueue`] (O(1) push/pop on time-clustered workloads); the
//!   indexed 4-ary [`HeapQueue`] it replaced remains available as the
//!   reference implementation, and both speak the [`EventSchedule`] trait;
//! * [`Engine`] — a virtual clock plus queue with a `run`-style driver;
//! * [`DetRng`] — a fast, splittable, fully deterministic random number
//!   generator (xoshiro256++ seeded via SplitMix64) with the distribution
//!   helpers the network model needs (uniform, exponential, normal,
//!   log-normal, sampling without replacement).
//!
//! Determinism is the point: two runs with the same seed produce identical
//! event interleavings, which makes every figure of the paper reproducible
//! bit-for-bit and lets the test-suite assert on exact outcomes.
//!
//! # Examples
//!
//! ```
//! use gossip_sim::Engine;
//! use gossip_types::{Duration, Time};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule(Time::from_millis(10), Ev::Ping);
//! engine.schedule(Time::from_millis(5), Ev::Pong);
//!
//! let mut order = Vec::new();
//! while let Some((at, ev)) = engine.pop() {
//!     order.push((at, format!("{ev:?}")));
//! }
//! assert_eq!(order[0].1, "Pong");
//! assert_eq!(order[1].1, "Ping");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod queue;
mod rng;

pub use engine::Engine;
pub use queue::{CalendarQueue, EventHandle, EventQueue, EventSchedule, HeapQueue};
pub use rng::DetRng;
