//! Deterministic, splittable random number generation.
//!
//! The simulator cannot rely on external entropy or on the `rand` crate's
//! default generators if runs are to replay identically across versions and
//! platforms. [`DetRng`] implements xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded via SplitMix64, plus the distribution helpers the
//! network model and the protocol need. Sub-generators for per-node streams
//! are derived with [`DetRng::split`], so adding a node never perturbs the
//! stream of another.

use std::fmt;

/// A deterministic random number generator (xoshiro256++).
///
/// # Examples
///
/// ```
/// use gossip_sim::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent per-node streams:
/// let mut node_3 = DetRng::seed_from(42).split(3);
/// let mut node_4 = DetRng::seed_from(42).split(4);
/// assert_ne!(node_3.next_u64(), node_4.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct DetRng {
    state: [u64; 4],
}

impl fmt::Debug for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The raw state is noise; show a fingerprint instead.
        write!(f, "DetRng({:#018x})", self.state[0] ^ self.state[1] ^ self.state[2] ^ self.state[3])
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Every seed yields a valid, well-mixed state (SplitMix64 expansion), so
    /// seeds `0`, `1`, `2`, … are fine.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        DetRng { state }
    }

    /// Derives an independent sub-generator for `stream`.
    ///
    /// Streams derived from the same parent with different indices are
    /// statistically independent; the parent is unaffected.
    pub fn split(&self, stream: u64) -> Self {
        let mut sm = self.state[0] ^ self.state[3] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let state =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        DetRng { state }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire 2018: unbiased bounded integers without division (mostly).
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniformly random value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniformly random `f64` in `[0, 1)` with 53 bits of
    /// precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive and finite");
        // Inverse transform; 1 - f64() is in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Samples a standard normal distribution (Box–Muller, polar form).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.f64() - 1.0;
            let v = 2.0 * self.f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Samples a normal distribution with the given mean and standard
    /// deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Samples a log-normal distribution parameterised by the mean and
    /// standard deviation *of the underlying normal* (the conventional
    /// `μ`/`σ` parameterisation).
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// Returns `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` uniformly at random.
    ///
    /// When `k >= n` all indices are returned (in random order). Uses a
    /// partial Fisher–Yates over an index vector: O(n) but `n` here is the
    /// membership size (hundreds), called a few times per gossip round.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx = Vec::new();
        self.sample_indices_into(n, k, &mut idx);
        idx
    }

    /// Allocation-free variant of [`DetRng::sample_indices`]: fills `out`
    /// with the sample, reusing its capacity. The random draw sequence is
    /// identical to `sample_indices`, so the two are interchangeable
    /// without perturbing determinism.
    ///
    /// For small samples out of large populations (`k² ≤ n`, the every-round
    /// partner selection) the partial Fisher–Yates runs over a *virtual*
    /// identity array: the handful of displaced positions is tracked in a
    /// scratch list instead of materialising all `n` indices, making the
    /// call O(k²) instead of O(n). Both paths draw the same randomness and
    /// produce the same sample.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        let k = k.min(n);
        out.clear();
        if k <= 64 && k * k <= n {
            // Virtual Fisher–Yates. `displaced` holds the positions whose
            // value differs from the identity array the classic loop would
            // operate on — at most one entry per iteration, scanned
            // linearly (k ≤ 64 keeps the scan in cache and the array on the
            // stack).
            let mut displaced: [(usize, usize); 64] = [(0, 0); 64];
            let mut displaced_len = 0usize;
            for i in 0..k {
                let j = i + self.index(n - i);
                // Values currently at positions i and j (identity unless an
                // earlier swap displaced them).
                let mut vi = i;
                let mut vj = j;
                let mut j_entry = None;
                for (e, &(pos, val)) in displaced[..displaced_len].iter().enumerate() {
                    if pos == j {
                        vj = val;
                        j_entry = Some(e);
                    } else if pos == i {
                        vi = val;
                    }
                }
                // The classic loop swaps out[i] and out[j]. Position i is
                // never examined again, so only position j's new value needs
                // recording.
                match j_entry {
                    Some(e) => displaced[e].1 = vi,
                    None => {
                        displaced[displaced_len] = (j, vi);
                        displaced_len += 1;
                    }
                }
                out.push(vj);
            }
            return;
        }
        out.extend(0..n);
        for i in 0..k {
            let j = i + self.index(n - i);
            out.swap(i, j);
        }
        out.truncate(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(8);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_of_parent_use() {
        let parent = DetRng::seed_from(1);
        let mut c1 = parent.split(5);
        let mut parent2 = DetRng::seed_from(1);
        parent2.next_u64(); // advancing a copy of the parent...
        let mut c2 = parent.split(5); // ...must not change what split(5) yields
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = DetRng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 1000 draws");
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::seed_from(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean} too far from 3.0");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut rng = DetRng::seed_from(17);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.2);
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::seed_from(19);
        for _ in 0..100 {
            let sample = rng.sample_indices(20, 7);
            assert_eq!(sample.len(), 7);
            let mut sorted = sample.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 7, "indices must be distinct");
            assert!(sample.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_saturates_at_n() {
        let mut rng = DetRng::seed_from(23);
        let mut sample = rng.sample_indices(5, 50);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from(29);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::seed_from(31);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = DetRng::seed_from(37);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn debug_is_nonempty() {
        let rng = DetRng::seed_from(41);
        assert!(!format!("{rng:?}").is_empty());
    }
}
