//! The simulation engine: a virtual clock bound to an event queue.

use gossip_types::Time;

use crate::queue::{EventHandle, EventQueue};

/// A discrete-event simulation engine.
///
/// The engine owns the virtual clock and the event queue. Callers either
/// drive it manually with [`Engine::pop`] (advancing the clock as events are
/// consumed) or hand it a dispatch closure via [`Engine::run_until`].
///
/// # Examples
///
/// A tiny self-scheduling simulation — a periodic tick that stops after one
/// virtual second:
///
/// ```
/// use gossip_sim::Engine;
/// use gossip_types::{Duration, Time};
///
/// let mut engine = Engine::new();
/// engine.schedule(Time::ZERO, ());
/// let mut ticks = 0;
/// while let Some((at, ())) = engine.pop() {
///     ticks += 1;
///     let next = at + Duration::from_millis(100);
///     if next < Time::from_secs(1) {
///         engine.schedule(next, ());
///     }
/// }
/// assert_eq!(ticks, 10);
/// ```
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: Time,
    processed: u64,
    peak_pending: usize,
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`Time::ZERO`].
    pub fn new() -> Self {
        Engine { queue: EventQueue::new(), now: Time::ZERO, processed: 0, peak_pending: 0 }
    }

    /// Returns the current virtual time (the timestamp of the last event
    /// popped, or zero initially).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Returns how many events have been processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Returns the number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns the largest number of simultaneously pending events observed
    /// so far (the high-water mark of the queue).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in a causal simulation;
    /// `at` is clamped to `now` (the event fires "immediately") so that
    /// zero-latency models behave rather than panic.
    pub fn schedule(&mut self, at: Time, event: E) -> EventHandle {
        let handle = self.queue.push(at.max(self.now), event);
        self.peak_pending = self.peak_pending.max(self.queue.len());
        handle
    }

    /// Cancels a scheduled event, removing it from the queue immediately.
    /// Returns whether a pending event was actually removed (stale handles
    /// are a no-op).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time ran backwards");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Pops the next event if it is due at or before `deadline` (inclusive),
    /// advancing the clock to its timestamp; leaves later events pending.
    ///
    /// This is the driver-loop primitive: one heap traversal per dispatched
    /// event instead of a `peek_time` followed by a `pop`.
    pub fn pop_before(&mut self, deadline: Time) -> Option<(Time, E)> {
        let (at, ev) = self.queue.pop_before(deadline)?;
        debug_assert!(at >= self.now, "time ran backwards");
        self.now = at;
        self.processed += 1;
        Some((at, ev))
    }

    /// Returns the timestamp of the next pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.queue.peek_time()
    }

    /// Runs the simulation until the queue drains or the clock passes
    /// `deadline`, dispatching each event to `handler`. The handler receives
    /// the engine itself so it can schedule follow-up events.
    ///
    /// Events scheduled exactly at `deadline` are processed; later ones are
    /// left pending. Returns the number of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: Time, mut handler: F) -> u64
    where
        F: FnMut(&mut Engine<E>, Time, E),
    {
        let start = self.processed;
        while let Some((at, ev)) = self.pop_before(deadline) {
            handler(self, at, ev);
        }
        // The clock reflects the deadline even if the queue drained early, so
        // back-to-back `run_until` calls observe monotone time.
        self.now = self.now.max(deadline);
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_types::Duration;

    #[test]
    fn clock_advances_with_pops() {
        let mut e = Engine::new();
        e.schedule(Time::from_secs(5), "later");
        e.schedule(Time::from_secs(2), "sooner");
        assert_eq!(e.now(), Time::ZERO);
        e.pop();
        assert_eq!(e.now(), Time::from_secs(2));
        e.pop();
        assert_eq!(e.now(), Time::from_secs(5));
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule(Time::from_secs(10), ());
        e.pop();
        e.schedule(Time::from_secs(1), ()); // in the past: clamp
        let (at, ()) = e.pop().unwrap();
        assert_eq!(at, Time::from_secs(10));
    }

    #[test]
    fn run_until_respects_deadline_inclusive() {
        let mut e = Engine::new();
        for s in 1..=5 {
            e.schedule(Time::from_secs(s), s);
        }
        let mut seen = Vec::new();
        let n = e.run_until(Time::from_secs(3), |_, _, s| seen.push(s));
        assert_eq!(n, 3);
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(e.now(), Time::from_secs(3));
        assert_eq!(e.pending(), 2);
    }

    #[test]
    fn run_until_allows_rescheduling_from_handler() {
        let mut e = Engine::new();
        e.schedule(Time::ZERO, 0u32);
        let mut count = 0;
        e.run_until(Time::from_secs(1), |eng, at, gen| {
            count += 1;
            if gen < 100 {
                eng.schedule(at + Duration::from_millis(250), gen + 1);
            }
        });
        // 0ms, 250ms, 500ms, 750ms, 1000ms
        assert_eq!(count, 5);
    }

    #[test]
    fn run_until_sets_clock_to_deadline_when_drained() {
        let mut e: Engine<()> = Engine::new();
        e.run_until(Time::from_secs(9), |_, _, _| {});
        assert_eq!(e.now(), Time::from_secs(9));
    }

    #[test]
    fn cancel_through_engine() {
        let mut e = Engine::new();
        let h = e.schedule(Time::from_secs(1), 'x');
        assert!(e.cancel(h));
        assert!(e.pop().is_none());
    }
}
