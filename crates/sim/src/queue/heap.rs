//! The reference implementation: a slab-backed, indexed 4-ary min-heap.

use gossip_types::Time;

use super::{EventHandle, EventSchedule, Slab};

/// Heap arity. Four children per node: shallower trees (fewer cache misses
/// per sift) at the cost of more comparisons per level — the classic win
/// for pop-heavy workloads.
const ARITY: usize = 4;

/// A priority queue of timestamped events with stable ordering and indexed
/// cancellation, organised as an indexed d-ary min-heap.
///
/// This is the reference implementation the [`CalendarQueue`] is
/// model-checked against: O(log n) push/pop with no workload assumptions.
/// The heap orders `u32` slot indices, so sift operations move 4-byte
/// integers instead of whole events; event payloads stay put in their
/// slots.
///
/// # Examples
///
/// ```
/// use gossip_sim::HeapQueue;
/// use gossip_types::Time;
///
/// let mut q = HeapQueue::new();
/// let h = q.push(Time::from_secs(1), "late");
/// q.push(Time::from_millis(1), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "early")));
/// assert_eq!(q.pop(), None); // "late" was cancelled
/// ```
///
/// [`CalendarQueue`]: super::CalendarQueue
pub struct HeapQueue<E> {
    /// The d-ary min-heap of slot indices, ordered by `(at, seq)`.
    heap: Vec<u32>,
    slab: Slab<E>,
    next_seq: u64,
}

impl<E> std::fmt::Debug for HeapQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        HeapQueue { heap: Vec::new(), slab: Slab::new(), next_seq: 0 }
    }

    /// Schedules `event` at time `at` and returns a cancellation handle.
    pub fn push(&mut self, at: Time, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len();
        let handle = self.slab.alloc_with_pos(at, seq, event, pos as u32);
        self.heap.push(handle.slot);
        self.sift_up(pos);
        handle
    }

    /// Cancels a previously scheduled event, removing it from the heap
    /// immediately.
    ///
    /// Returns whether a pending event was actually removed. Handles whose
    /// event already popped — or was already cancelled — fail the
    /// generation check and are a no-op, so `len()` stays exact no matter
    /// how callers misuse stale handles.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slab.lookup(handle) else {
            return false;
        };
        let pos = self.slab.pos(slot) as usize;
        self.remove_heap_entry(pos);
        self.slab.release(slot);
        true
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let slot = *self.heap.first()?;
        self.remove_heap_entry(0);
        let (at, event) = self.slab.release(slot);
        Some((at, event.expect("occupied slot holds an event")))
    }

    /// Removes and returns the earliest pending event if it is due at or
    /// before `horizon`; leaves the queue untouched otherwise.
    ///
    /// This is the driver-loop primitive: one heap traversal per dispatched
    /// event instead of a `peek_time` followed by a `pop`.
    pub fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        let slot = *self.heap.first()?;
        if self.slab.at(slot) > horizon {
            return None;
        }
        self.remove_heap_entry(0);
        let (at, event) = self.slab.release(slot);
        Some((at, event.expect("occupied slot holds an event")))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|&slot| self.slab.at(slot))
    }

    /// Returns the exact number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// `(at, seq)` sort key of the slot behind heap position `i`.
    #[inline]
    fn key(&self, i: usize) -> (Time, u64) {
        let slot = self.heap[i];
        (self.slab.at(slot), self.slab.seq(slot))
    }

    /// Writes `slot` into heap position `i`, keeping the back-pointer in
    /// sync.
    #[inline]
    fn place(&mut self, i: usize, slot: u32) {
        self.heap[i] = slot;
        self.slab.set_pos(slot, i as u32);
    }

    /// Removes the heap entry at position `pos` (swap with the last entry,
    /// then restore the heap property for the moved entry).
    fn remove_heap_entry(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        if pos == last {
            self.heap.pop();
            return;
        }
        let moved = self.heap[last];
        self.heap.pop();
        self.place(pos, moved);
        // The moved entry came from the bottom; it can only need to go
        // down, unless the removal point was below its correct position
        // (possible when removing from the middle of the heap).
        if pos > 0 && self.key(pos) < self.key((pos - 1) / ARITY) {
            self.sift_up(pos);
        } else {
            self.sift_down(pos);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        let slot = self.heap[i];
        let key = (self.slab.at(slot), self.slab.seq(slot));
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if key < self.key(parent) {
                let p = self.heap[parent];
                self.place(i, p);
                i = parent;
            } else {
                break;
            }
        }
        self.place(i, slot);
    }

    fn sift_down(&mut self, mut i: usize) {
        let slot = self.heap[i];
        let key = (self.slab.at(slot), self.slab.seq(slot));
        let len = self.heap.len();
        loop {
            let first_child = i * ARITY + 1;
            if first_child >= len {
                break;
            }
            let mut min_child = first_child;
            let mut min_key = self.key(first_child);
            let end = (first_child + ARITY).min(len);
            for c in first_child + 1..end {
                let k = self.key(c);
                if k < min_key {
                    min_key = k;
                    min_child = c;
                }
            }
            if min_key < key {
                let m = self.heap[min_child];
                self.place(i, m);
                i = min_child;
            } else {
                break;
            }
        }
        self.place(i, slot);
    }
}

impl<E> EventSchedule<E> for HeapQueue<E> {
    fn push(&mut self, at: Time, event: E) -> EventHandle {
        HeapQueue::push(self, at, event)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        HeapQueue::cancel(self, handle)
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        HeapQueue::pop(self)
    }

    fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        HeapQueue::pop_before(self, horizon)
    }

    fn peek_time(&self) -> Option<Time> {
        HeapQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        HeapQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        HeapQueue::is_empty(self)
    }
}
