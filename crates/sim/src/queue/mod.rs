//! Timestamped event queues.
//!
//! Two interchangeable implementations of the same contract live here:
//!
//! * [`CalendarQueue`] — a bucketed ("calendar") queue with O(1) push and
//!   pop on clustered workloads. This is the default: [`EventQueue`] is an
//!   alias for it, and it is what the simulation engine runs on.
//! * [`HeapQueue`] — the slab-backed, indexed 4-ary min-heap it replaced,
//!   kept as the O(log n) reference implementation. The property tests
//!   model-check the calendar queue against it on arbitrary operation
//!   interleavings.
//!
//! Both provide the two things a deterministic simulator needs beyond a
//! plain priority queue:
//!
//! 1. **a stable total order** — events at equal times pop in insertion
//!    order, so the simulation schedule does not depend on queue internals;
//! 2. **true cancellation** — scheduling returns an [`EventHandle`] (a
//!    slot + generation pair) that removes the entry immediately. There are
//!    no tombstones: cancelled entries never linger, `len()` is always
//!    exact, and stale handles (already popped or already cancelled) are
//!    rejected by the generation check.
//!
//! The shared contract is the [`EventSchedule`] trait, which generic code
//! (micro-benchmarks, property tests) can use to drive either
//! implementation.

use gossip_types::Time;

mod calendar;
mod heap;

pub use calendar::CalendarQueue;
pub use heap::HeapQueue;

/// The default event queue of the simulation engine.
///
/// Currently the [`CalendarQueue`]; the [`HeapQueue`] remains available as
/// the reference implementation with the identical API.
pub type EventQueue<E> = CalendarQueue<E>;

/// A handle to a scheduled event, usable to cancel it.
///
/// A handle names a slot plus the generation the slot had when the event
/// was pushed. Slots are recycled, generations only grow: a handle whose
/// event already popped (or was already cancelled) fails the generation
/// check and is rejected, so a handle never aliases a different event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle {
    slot: u32,
    generation: u32,
}

/// The common contract of the event queue implementations.
///
/// All operations preserve the exact `(time, insertion sequence)` total
/// order; see the module docs for the determinism requirements.
pub trait EventSchedule<E> {
    /// Schedules `event` at time `at` and returns a cancellation handle.
    fn push(&mut self, at: Time, event: E) -> EventHandle;
    /// Cancels a previously scheduled event; returns whether a pending
    /// event was actually removed (stale handles are a no-op).
    fn cancel(&mut self, handle: EventHandle) -> bool;
    /// Removes and returns the earliest pending event.
    fn pop(&mut self) -> Option<(Time, E)>;
    /// Removes and returns the earliest pending event if it is due at or
    /// before `horizon`; leaves the queue untouched otherwise.
    fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)>;
    /// Returns the timestamp of the earliest pending event without
    /// removing it.
    fn peek_time(&self) -> Option<Time>;
    /// Returns the exact number of pending events.
    fn len(&self) -> usize;
    /// Returns `true` if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One slab entry: the event payload plus its scheduling key and the
/// back-pointer into the implementation's internal structure.
struct Slot<E> {
    /// Bumped every time the slot is freed; handles carry the generation
    /// they were issued under.
    generation: u32,
    /// Position of this slot's entry in the owning structure (heap index
    /// for [`HeapQueue`], index within the bucket for [`CalendarQueue`]);
    /// only meaningful while the slot is occupied.
    pos: u32,
    at: Time,
    /// Insertion sequence number: the tie-break making the order total.
    seq: u64,
    event: Option<E>,
}

/// The slab of event payloads shared by both queue implementations: stable
/// `u32` slot indices, free-list recycling, generation-checked handles.
struct Slab<E> {
    slots: Vec<Slot<E>>,
    /// Free slot indices available for reuse.
    free: Vec<u32>,
}

impl<E> Slab<E> {
    fn new() -> Self {
        Slab { slots: Vec::new(), free: Vec::new() }
    }

    /// Allocates a slot with the position known up front: fills the whole
    /// slot — including `pos` — and returns its handle in one slot access
    /// (the push fast path).
    fn alloc_with_pos(&mut self, at: Time, seq: u64, event: E, pos: u32) -> EventHandle {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.at = at;
                s.seq = seq;
                s.pos = pos;
                s.event = Some(event);
                EventHandle { slot, generation: s.generation }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("more than 2^32 pending events");
                self.slots.push(Slot { generation: 0, pos, at, seq, event: Some(event) });
                EventHandle { slot, generation: 0 }
            }
        }
    }

    /// Frees a slot (bumping its generation so outstanding handles die) and
    /// returns its timestamp and event.
    fn release(&mut self, slot: u32) -> (Time, Option<E>) {
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        let event = s.event.take();
        let at = s.at;
        self.free.push(slot);
        (at, event)
    }

    /// Validates a handle against the generation check; returns the slot
    /// index if it still names a live event.
    fn lookup(&self, handle: EventHandle) -> Option<u32> {
        let slot = self.slots.get(handle.slot as usize)?;
        if slot.generation != handle.generation || slot.event.is_none() {
            return None;
        }
        Some(handle.slot)
    }

    #[inline]
    fn at(&self, slot: u32) -> Time {
        self.slots[slot as usize].at
    }

    #[inline]
    fn seq(&self, slot: u32) -> u64 {
        self.slots[slot as usize].seq
    }

    #[inline]
    fn pos(&self, slot: u32) -> u32 {
        self.slots[slot as usize].pos
    }

    #[inline]
    fn set_pos(&mut self, slot: u32, pos: u32) {
        self.slots[slot as usize].pos = pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gossip_types::Duration;

    /// Instantiates the shared behavioural suite for one implementation.
    macro_rules! queue_contract_tests {
        ($modname:ident, $queue:ident) => {
            mod $modname {
                use super::*;

                #[test]
                fn pops_in_time_order() {
                    let mut q = $queue::new();
                    q.push(Time::from_secs(3), 'c');
                    q.push(Time::from_secs(1), 'a');
                    q.push(Time::from_secs(2), 'b');
                    let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
                    assert_eq!(order, vec!['a', 'b', 'c']);
                }

                #[test]
                fn equal_times_pop_in_insertion_order() {
                    let mut q = $queue::new();
                    let t = Time::from_secs(1);
                    for i in 0..100 {
                        q.push(t, i);
                    }
                    let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
                    assert_eq!(order, (0..100).collect::<Vec<_>>());
                }

                #[test]
                fn cancellation_skips_events() {
                    let mut q = $queue::new();
                    let h1 = q.push(Time::from_secs(1), 1);
                    let h2 = q.push(Time::from_secs(2), 2);
                    q.push(Time::from_secs(3), 3);
                    assert!(q.cancel(h2));
                    assert!(!q.cancel(h2), "double-cancel is a no-op");
                    assert!(q.cancel(h1));
                    assert_eq!(q.pop(), Some((Time::from_secs(3), 3)));
                    assert_eq!(q.pop(), None);
                }

                #[test]
                fn cancel_unknown_handle_is_rejected() {
                    let mut q: $queue<u8> = $queue::new();
                    assert!(!q.cancel(EventHandle { slot: 99, generation: 0 }));
                }

                #[test]
                fn cancel_after_pop_is_rejected_and_len_stays_exact() {
                    // Regression test: with the old tombstone design,
                    // cancelling an already-popped handle planted a tombstone
                    // that was never reaped, so `len()` underflowed once the
                    // queue drained.
                    let mut q = $queue::new();
                    let h = q.push(Time::from_secs(1), 'x');
                    assert_eq!(q.pop(), Some((Time::from_secs(1), 'x')));
                    assert!(!q.cancel(h), "handle of a popped event must be stale");
                    assert_eq!(q.len(), 0);
                    assert!(q.is_empty());
                    // The queue remains fully usable.
                    q.push(Time::from_secs(2), 'y');
                    assert_eq!(q.len(), 1);
                    assert_eq!(q.pop(), Some((Time::from_secs(2), 'y')));
                }

                #[test]
                fn recycled_slot_does_not_honour_old_handles() {
                    let mut q = $queue::new();
                    let h1 = q.push(Time::from_secs(1), 1);
                    assert!(q.cancel(h1));
                    // The slot is recycled for a new event; the old handle
                    // must not be able to cancel it.
                    let h2 = q.push(Time::from_secs(2), 2);
                    assert!(!q.cancel(h1), "stale handle must not cancel the recycled slot");
                    assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
                    assert!(!q.cancel(h2));
                }

                #[test]
                fn peek_time_reports_earliest() {
                    let mut q = $queue::new();
                    let h = q.push(Time::from_secs(1), 'x');
                    q.push(Time::from_secs(2), 'y');
                    q.cancel(h);
                    assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
                    assert_eq!(q.pop(), Some((Time::from_secs(2), 'y')));
                }

                #[test]
                fn pop_before_respects_the_horizon() {
                    let mut q = $queue::new();
                    q.push(Time::from_secs(1), 'a');
                    q.push(Time::from_secs(2), 'b');
                    q.push(Time::from_secs(3), 'c');
                    assert_eq!(q.pop_before(Time::from_secs(2)), Some((Time::from_secs(1), 'a')));
                    assert_eq!(
                        q.pop_before(Time::from_secs(2)),
                        Some((Time::from_secs(2), 'b')),
                        "inclusive"
                    );
                    assert_eq!(q.pop_before(Time::from_secs(2)), None, "later events stay queued");
                    assert_eq!(q.len(), 1);
                    assert_eq!(q.pop(), Some((Time::from_secs(3), 'c')));
                }

                #[test]
                fn len_accounts_for_cancellations() {
                    let mut q = $queue::new();
                    let h = q.push(Time::from_secs(1), 0);
                    q.push(Time::from_secs(2), 1);
                    assert_eq!(q.len(), 2);
                    q.cancel(h);
                    assert_eq!(q.len(), 1);
                    assert!(!q.is_empty());
                    q.pop();
                    assert!(q.is_empty());
                }

                #[test]
                fn default_is_an_empty_queue() {
                    let q: $queue<u8> = $queue::default();
                    assert!(q.is_empty());
                    assert_eq!(q.peek_time(), None);
                }

                #[test]
                fn interleaved_push_pop_keeps_order() {
                    let mut q = $queue::new();
                    let base = Time::ZERO;
                    q.push(base + Duration::from_millis(10), 10);
                    q.push(base + Duration::from_millis(30), 30);
                    assert_eq!(q.pop().unwrap().1, 10);
                    q.push(base + Duration::from_millis(20), 20);
                    assert_eq!(q.pop().unwrap().1, 20);
                    assert_eq!(q.pop().unwrap().1, 30);
                }

                #[test]
                fn heavy_cancel_churn_keeps_order_exact() {
                    // Cancel from the middle of a large queue repeatedly;
                    // every survivor must still pop in exact (time,
                    // insertion) order.
                    let mut q = $queue::new();
                    let mut handles = Vec::new();
                    for i in 0..500u64 {
                        handles.push((i, q.push(Time::from_micros(i * 37 % 1000), i)));
                    }
                    let mut cancelled = std::collections::HashSet::new();
                    for &(i, h) in handles.iter().step_by(3) {
                        assert!(q.cancel(h));
                        cancelled.insert(i);
                    }
                    assert_eq!(q.len(), 500 - cancelled.len());
                    let mut popped = Vec::new();
                    while let Some((at, i)) = q.pop() {
                        assert!(!cancelled.contains(&i), "cancelled event {i} must not pop");
                        popped.push((at, i));
                    }
                    assert_eq!(popped.len(), 500 - cancelled.len());
                    for w in popped.windows(2) {
                        assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
                    }
                }

                #[test]
                fn far_future_sentinels_pop_last() {
                    // `Time::MAX` is used as an "infinitely far" deadline; the
                    // day arithmetic must not overflow around it.
                    let mut q = $queue::new();
                    q.push(Time::MAX, 'z');
                    q.push(Time::from_secs(1), 'a');
                    q.push(Time::MAX, 'y');
                    assert_eq!(q.pop(), Some((Time::from_secs(1), 'a')));
                    assert_eq!(q.pop_before(Time::from_secs(100)), None);
                    assert_eq!(q.pop(), Some((Time::MAX, 'z')));
                    assert_eq!(
                        q.pop(),
                        Some((Time::MAX, 'y')),
                        "sentinel ties keep insertion order"
                    );
                    assert_eq!(q.pop(), None);
                }
            }
        };
    }

    queue_contract_tests!(calendar_contract, CalendarQueue);
    queue_contract_tests!(heap_contract, HeapQueue);
}
