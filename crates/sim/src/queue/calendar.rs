//! The default implementation: a bucketed calendar queue.
//!
//! A calendar queue ([R. Brown, CACM 1988]) hashes events by time into an
//! array of buckets ("days"), each `width` microseconds wide; the array as a
//! whole spans one "year". Pop walks the calendar day by day from the
//! current position, so on workloads whose events cluster near the clock —
//! gossip traffic clusters tightly around the 200 ms round cadence — both
//! push and pop are O(1): push is one division and one append, pop scans the
//! handful of entries in the current day's bucket.
//!
//! Two adaptations keep the structure exact and general:
//!
//! * **Exact total order.** Within a day the minimum is selected by
//!   `(time, insertion seq)`, and a day's events all hash to the same
//!   bucket, so the pop order is identical to the reference heap's — the
//!   simulation schedule does not change by swapping implementations.
//! * **Self-tuning size.** When the population outgrows (or undershoots)
//!   the bucket array, the calendar is rebuilt with twice (or half) the
//!   buckets and a day width re-estimated from the gaps between the
//!   earliest pending events, keeping ~O(1) entries per day. Sparse or
//!   far-future tails (retransmission timers seconds ahead, `Time::MAX`
//!   sentinels) are handled by a direct-search fallback after one fruitless
//!   lap around the calendar.
//!
//! [R. Brown, CACM 1988]: https://doi.org/10.1145/63039.63045

use gossip_types::Time;

use super::{EventHandle, EventSchedule, Slab};

/// Smallest bucket-array size; shrinks stop here.
const MIN_BUCKETS: usize = 16;
/// Day width (µs, log₂) used before the first resize provides an estimate.
const DEFAULT_WIDTH_LOG2: u32 = 10;
/// How many of the earliest pending events the resize samples to estimate
/// the inter-event gap (and hence the new day width).
const WIDTH_SAMPLE: usize = 32;

/// One calendar entry. The time is stored inline so that scanning a bucket
/// for its minimum walks contiguous memory; the insertion-sequence
/// tie-break lives in the slab and is only consulted when two entries
/// actually tie on time, keeping the entry at 16 bytes (four per cache
/// line).
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Event time in microseconds.
    at: u64,
    /// Payload slot in the slab.
    slot: u32,
}

/// A priority queue of timestamped events with stable ordering and indexed
/// cancellation, organised as a self-resizing calendar (bucket array).
///
/// O(1) push/pop on time-clustered workloads; exact `(time, insertion)`
/// order always. This is the simulator's default [`EventQueue`].
///
/// # Examples
///
/// ```
/// use gossip_sim::CalendarQueue;
/// use gossip_types::Time;
///
/// let mut q = CalendarQueue::new();
/// let h = q.push(Time::from_secs(1), "late");
/// q.push(Time::from_millis(1), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((Time::from_millis(1), "early")));
/// assert_eq!(q.pop(), None); // "late" was cancelled
/// ```
///
/// [`EventQueue`]: super::EventQueue
pub struct CalendarQueue<E> {
    slab: Slab<E>,
    /// The bucket array; `buckets.len()` is a power of two.
    buckets: Vec<Vec<Entry>>,
    /// `buckets.len() - 1`, for masking day numbers into bucket indices.
    mask: u64,
    /// Day width in microseconds; always a power of two so that the
    /// time→day mapping on the push/cancel path is a shift, not a division.
    width: u64,
    /// `width.ilog2()`.
    width_log2: u32,
    /// The day the pop scan is currently standing on. Invariant: no pending
    /// event lies in an earlier day.
    cur_day: u64,
    len: usize,
    next_seq: u64,
    /// Pops since the last rebuild; triggers a periodic width re-tune. The
    /// bucket count only changes at population thresholds, but the *width*
    /// wants to track the current event density: the ramp-up that triggered
    /// the last grow is usually sparser than the steady state that follows.
    pops_since_rebuild: u64,
}

impl<E> std::fmt::Debug for CalendarQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_us", &(1u64 << self.width_log2))
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CalendarQueue {
            slab: Slab::new(),
            buckets: vec![Vec::new(); MIN_BUCKETS],
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1 << DEFAULT_WIDTH_LOG2,
            width_log2: DEFAULT_WIDTH_LOG2,
            cur_day: 0,
            len: 0,
            next_seq: 0,
            pops_since_rebuild: 0,
        }
    }

    /// Schedules `event` at time `at` and returns a cancellation handle.
    pub fn push(&mut self, at: Time, event: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let micros = at.as_micros();
        let day = micros >> self.width_log2;
        // An event earlier than the scan position moves the position back
        // (the engine never schedules into the past, but the queue contract
        // allows it).
        if self.len == 0 || day < self.cur_day {
            self.cur_day = day;
        }
        let bucket = (day & self.mask) as usize;
        let pos = self.buckets[bucket].len() as u32;
        let handle = self.slab.alloc_with_pos(at, seq, event, pos);
        self.buckets[bucket].push(Entry { at: micros, slot: handle.slot });
        self.len += 1;
        if self.len > self.buckets.len() * 2 {
            self.rebuild(self.buckets.len() * 2);
        }
        handle
    }

    /// Cancels a previously scheduled event, removing it from its bucket
    /// immediately.
    ///
    /// Returns whether a pending event was actually removed. Handles whose
    /// event already popped — or was already cancelled — fail the
    /// generation check and are a no-op, so `len()` stays exact no matter
    /// how callers misuse stale handles.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let Some(slot) = self.slab.lookup(handle) else {
            return false;
        };
        let day = self.slab.at(slot).as_micros() >> self.width_log2;
        let bucket = (day & self.mask) as usize;
        let pos = self.slab.pos(slot) as usize;
        debug_assert_eq!(self.buckets[bucket][pos].slot, slot);
        self.remove_entry(bucket, pos);
        self.slab.release(slot);
        self.len -= 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.rebuild(self.buckets.len() / 2);
        }
        true
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.pop_min(u64::MAX)
    }

    /// Removes and returns the earliest pending event if it is due at or
    /// before `horizon`; leaves the queue untouched otherwise.
    ///
    /// This is the driver-loop primitive: one scan per dispatched event
    /// instead of a `peek_time` followed by a `pop`, and the scan stops at
    /// the first day past the horizon.
    pub fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        self.pop_min(horizon.as_micros())
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let lap = self.buckets.len() as u64;
        for day in self.cur_day..self.cur_day.saturating_add(lap) {
            let day_end = day.saturating_mul(self.width).checked_add(self.width);
            let bucket = (day & self.mask) as usize;
            if let Some(i) = self.min_in_day(bucket, day_end) {
                return Some(Time::from_micros(self.buckets[bucket][i].at));
            }
        }
        // Sparse tail: fall back to a direct search.
        let (bucket, i) = self.global_min().expect("non-empty queue has a minimum");
        Some(Time::from_micros(self.buckets[bucket][i].at))
    }

    /// Returns the exact number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Pops the overall minimum if its time is ≤ `horizon` (in µs).
    fn pop_min(&mut self, horizon: u64) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        // Walk the calendar one day at a time, at most one full lap.
        for _ in 0..self.buckets.len() {
            let day_start = self.cur_day.saturating_mul(self.width);
            if day_start > horizon {
                return None;
            }
            let day_end = day_start.checked_add(self.width);
            let bucket = (self.cur_day & self.mask) as usize;
            if let Some(i) = self.min_in_day(bucket, day_end) {
                if self.buckets[bucket][i].at > horizon {
                    return None;
                }
                return Some(self.take(bucket, i));
            }
            // Saturating: once the scan stands on the last representable
            // day (Time::MAX sentinels with a 1 µs width), there is no
            // later day to advance to — the lap bound and the direct-search
            // fallback terminate the loop instead.
            self.cur_day = self.cur_day.saturating_add(1);
        }
        // A fruitless lap: every pending event is at least a year ahead of
        // the scan position (sparse queue or far-future sentinels). Find the
        // minimum directly and jump the calendar to it.
        let (bucket, i) = self.global_min().expect("non-empty queue has a minimum");
        let at = self.buckets[bucket][i].at;
        self.cur_day = at >> self.width_log2;
        if at > horizon {
            return None;
        }
        Some(self.take(bucket, i))
    }

    /// Removes the entry at `bucket[i]`, releases its slot and returns the
    /// event.
    fn take(&mut self, bucket: usize, i: usize) -> (Time, E) {
        let entry = self.remove_entry(bucket, i);
        let (at, event) = self.slab.release(entry.slot);
        self.len -= 1;
        self.pops_since_rebuild += 1;
        if self.buckets.len() > MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.rebuild(self.buckets.len() / 2);
        } else if self.pops_since_rebuild > 8 * self.buckets.len() as u64 {
            // Periodic re-tune at the same size: refreshes the width
            // estimate once the resize thresholds stop firing. Amortised
            // cost: one entry move per ~8 pops.
            self.rebuild(self.buckets.len());
        }
        (at, event.expect("occupied slot holds an event"))
    }

    /// Index of the minimum `(at, seq)` entry in bucket `bucket` belonging
    /// to the current day (i.e. strictly before `day_end`), if any. Entries
    /// of later "years" share the bucket and are skipped. `day_end` is
    /// `None` for the last calendar day of the time axis, whose true end
    /// (2⁶⁴ µs) is unrepresentable: every entry in the bucket belongs to it
    /// — `Time::MAX` sentinels included. The insertion sequence is only
    /// fetched from the slab on an actual time tie.
    #[inline]
    fn min_in_day(&self, bucket: usize, day_end: Option<u64>) -> Option<usize> {
        let entries = &self.buckets[bucket];
        let mut best: Option<(u64, usize)> = None;
        for (i, e) in entries.iter().enumerate() {
            if day_end.is_some_and(|end| e.at >= end) {
                continue;
            }
            best = match best {
                None => Some((e.at, i)),
                Some((at, b))
                    if e.at < at
                        || (e.at == at
                            && self.slab.seq(e.slot) < self.slab.seq(entries[b].slot)) =>
                {
                    Some((e.at, i))
                }
                keep => keep,
            };
        }
        best.map(|(_, i)| i)
    }

    /// Direct search for the minimum `(at, seq)` entry across all buckets.
    fn global_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<(u64, (usize, usize))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                best = match best {
                    None => Some((e.at, (b, i))),
                    Some((at, (bb, bi)))
                        if e.at < at
                            || (e.at == at
                                && self.slab.seq(e.slot)
                                    < self.slab.seq(self.buckets[bb][bi].slot)) =>
                    {
                        Some((e.at, (b, i)))
                    }
                    keep => keep,
                };
            }
        }
        best.map(|(_, loc)| loc)
    }

    /// Appends `entry` to its bucket, keeping the slab back-pointer in sync.
    #[inline]
    fn place(&mut self, entry: Entry) {
        let bucket = ((entry.at >> self.width_log2) & self.mask) as usize;
        self.slab.set_pos(entry.slot, self.buckets[bucket].len() as u32);
        self.buckets[bucket].push(entry);
    }

    /// Swap-removes `bucket[i]`, fixing the back-pointer of the entry that
    /// takes its place.
    fn remove_entry(&mut self, bucket: usize, i: usize) -> Entry {
        let b = &mut self.buckets[bucket];
        let entry = b.swap_remove(i);
        if i < b.len() {
            let moved = b[i].slot;
            self.slab.set_pos(moved, i as u32);
        }
        entry
    }

    /// Rebuilds the calendar with `new_buckets` buckets and a day width
    /// re-estimated from the current population. Inner bucket allocations
    /// are recycled, so steady-state resizing does not thrash the
    /// allocator.
    fn rebuild(&mut self, new_buckets: usize) {
        debug_assert!(new_buckets.is_power_of_two());
        let mut entries: Vec<Entry> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            // `append` leaves the bucket empty but keeps its capacity.
            entries.append(bucket);
        }
        self.width_log2 = Self::estimate_width_log2(&mut entries);
        self.width = 1 << self.width_log2;
        if new_buckets <= self.buckets.len() {
            self.buckets.truncate(new_buckets);
        } else {
            self.buckets.resize_with(new_buckets, Vec::new);
        }
        self.mask = (new_buckets - 1) as u64;
        self.cur_day = entries.iter().map(|e| e.at).min().unwrap_or(0) >> self.width_log2;
        for entry in entries {
            self.place(entry);
        }
        self.pops_since_rebuild = 0;
    }

    /// Estimates a day width (as its log₂) from the gaps between the
    /// earliest pending events: twice the mean gap over a sample of the
    /// [`WIDTH_SAMPLE`] soonest entries, rounded up to a power of two —
    /// aiming at a couple of near-term events per day.
    ///
    /// The estimate is a pure function of the pending set, so rebuilds are
    /// as deterministic as everything else.
    fn estimate_width_log2(entries: &mut [Entry]) -> u32 {
        let m = WIDTH_SAMPLE.min(entries.len());
        if m < 2 {
            return DEFAULT_WIDTH_LOG2;
        }
        // Partition the m soonest entries to the front, then measure their
        // span. Keys are unique (slots break ties), so the selection is
        // deterministic — and only the times matter for the estimate.
        entries.select_nth_unstable_by_key(m - 1, |e| (e.at, e.slot));
        let mut min = u64::MAX;
        let mut max = 0u64;
        for e in &entries[..m] {
            min = min.min(e.at);
            max = max.max(e.at);
        }
        let span = max - min;
        // Heavily tied sample: 1 µs days (a day never splits a tie anyway —
        // equal times always share a bucket).
        (span / (2 * (m as u64 - 1))).max(1).next_power_of_two().ilog2()
    }
}

impl<E> EventSchedule<E> for CalendarQueue<E> {
    fn push(&mut self, at: Time, event: E) -> EventHandle {
        CalendarQueue::push(self, at, event)
    }

    fn cancel(&mut self, handle: EventHandle) -> bool {
        CalendarQueue::cancel(self, handle)
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        CalendarQueue::pop(self)
    }

    fn pop_before(&mut self, horizon: Time) -> Option<(Time, E)> {
        CalendarQueue::pop_before(self, horizon)
    }

    fn peek_time(&self) -> Option<Time> {
        CalendarQueue::peek_time(self)
    }

    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        CalendarQueue::is_empty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Crossing the grow threshold (2× buckets) and draining back through
    /// the shrink threshold (½× buckets) must preserve the exact order and
    /// the handle validity across rebuilds.
    #[test]
    fn resize_boundaries_preserve_order_and_handles() {
        let mut q = CalendarQueue::new();
        // Push exactly to the first grow boundary (MIN_BUCKETS * 2 + 1) and
        // far beyond it, with a mix of clustered and spread times.
        let mut handles = Vec::new();
        for i in 0..(MIN_BUCKETS as u64 * 8 + 3) {
            let at = Time::from_micros((i % 7) * 100 + i * 13);
            handles.push(q.push(at, i));
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "queue must have grown");
        // Cancel a third mid-resize; the remaining handles must survive the
        // rebuilds.
        for h in handles.iter().step_by(3) {
            assert!(q.cancel(*h));
        }
        let mut last = None;
        let mut popped = 0;
        while let Some((at, i)) = q.pop() {
            if let Some((lat, li)) = last {
                assert!(at > lat || (at == lat && i > li), "order broke across resizes");
            }
            last = Some((at, i));
            popped += 1;
        }
        assert_eq!(popped, handles.len() - handles.len().div_ceil(3));
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "drained queue shrinks back");
    }

    /// The width estimator adapts to the event density: clustered events
    /// get microsecond-scale days, sparse events get wide ones.
    #[test]
    fn width_adapts_to_density() {
        let mut dense = CalendarQueue::new();
        for i in 0..200u64 {
            dense.push(Time::from_micros(i), i);
        }
        let mut sparse = CalendarQueue::new();
        for i in 0..200u64 {
            sparse.push(Time::from_secs(i), i);
        }
        assert!(
            dense.width < sparse.width,
            "dense width {} must be below sparse width {}",
            dense.width,
            sparse.width
        );
    }

    /// Regression test: `Time::MAX` sentinels must drain cleanly when the
    /// day width is 1 µs. A heavily tied population tunes the width to
    /// 1 µs on the grow rebuild; the first sentinel pop then jumps
    /// `cur_day` to the last representable day, whose true end (2⁶⁴ µs)
    /// saturated in the old code — the remaining sentinels became
    /// invisible to the day scan and `cur_day += 1` overflowed (debug
    /// panic; silent wrap + O(n) pops in release).
    #[test]
    fn max_sentinels_drain_cleanly_at_one_micro_width() {
        let mut q = CalendarQueue::new();
        // 33 tied events cross the grow threshold; the rebuild samples an
        // all-tied population and picks a 1 µs day width.
        for i in 0..33u64 {
            q.push(Time::from_micros(500), i);
        }
        assert_eq!(q.width, 1, "tied sample must tune the width to 1 µs");
        for i in 0..20u64 {
            q.push(Time::MAX, 100 + i);
        }
        // The ties drain in insertion order, then every sentinel — also in
        // insertion order, with no panic and an exact len throughout.
        for i in 0..33u64 {
            assert_eq!(q.pop(), Some((Time::from_micros(500), i)));
        }
        for i in 0..20u64 {
            assert_eq!(q.pop(), Some((Time::MAX, 100 + i)));
            assert_eq!(q.len(), 19 - i as usize);
        }
        assert_eq!(q.pop(), None);
        // The queue stays usable after standing on the last day.
        q.push(Time::from_secs(1), 999);
        assert_eq!(q.pop(), Some((Time::from_secs(1), 999)));
    }

    /// A far-future outlier must not break the scan (it is skipped each lap
    /// and found by the direct-search fallback once it is the minimum).
    #[test]
    fn sparse_tail_uses_direct_search() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_micros(10), 'a');
        // Far beyond one calendar year (16 buckets × default width).
        q.push(Time::from_secs(3600), 'z');
        assert_eq!(q.pop(), Some((Time::from_micros(10), 'a')));
        assert_eq!(q.peek_time(), Some(Time::from_secs(3600)));
        assert_eq!(q.pop(), Some((Time::from_secs(3600), 'z')));
        assert_eq!(q.pop(), None);
    }
}
