//! Property-based tests of the simulation kernel.

use proptest::collection::vec;
use proptest::prelude::*;

use gossip_sim::{DetRng, Engine, EventQueue};
use gossip_types::Time;

proptest! {
    /// The event queue pops a totally ordered sequence: non-decreasing
    /// times, and insertion order within equal times.
    #[test]
    fn queue_order_is_total_and_stable(times in vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_micros(t), i);
        }
        let mut popped: Vec<(Time, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "times must be non-decreasing");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties must respect insertion order");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in vec(0u64..100, 1..100),
        cancel_mask in vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> =
            times.iter().enumerate().map(|(i, &t)| (i, q.push(Time::from_micros(t), i))).collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*h);
                cancelled.insert(*i);
            }
        }
        let mut survivors: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            survivors.push(e);
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
        for s in survivors {
            prop_assert!(!cancelled.contains(&s));
        }
    }

    /// Model check: the slab-backed indexed queue agrees with a
    /// `BinaryHeap`-based reference model on an arbitrary interleaving of
    /// push / pop / cancel operations — including the stable tie-break at
    /// equal timestamps.
    #[test]
    fn queue_matches_binary_heap_reference(
        ops in vec((0u8..4, 0u64..50), 1..300),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Reference model: a plain max-heap of `Reverse<(time, seq)>` plus
        /// a tombstone set — the pre-rewrite design, kept as the oracle.
        struct Model {
            heap: BinaryHeap<Reverse<(Time, u64)>>,
            cancelled: std::collections::HashSet<u64>,
            payload: std::collections::HashMap<u64, u64>,
        }

        impl Model {
            fn pop(&mut self) -> Option<(Time, u64)> {
                while let Some(Reverse((at, seq))) = self.heap.pop() {
                    if self.cancelled.remove(&seq) {
                        continue;
                    }
                    return Some((at, self.payload.remove(&seq).expect("payload")));
                }
                None
            }
        }

        let mut q = EventQueue::new();
        let mut model =
            Model { heap: BinaryHeap::new(), cancelled: Default::default(), payload: Default::default() };
        // Live handles of both sides, kept in lockstep: (queue handle, model seq).
        let mut live: Vec<(gossip_sim::EventHandle, u64)> = Vec::new();
        let mut next_seq = 0u64;

        for &(op, arg) in &ops {
            match op {
                // Push (twice as likely as the other operations so the
                // queue actually grows).
                0 | 1 => {
                    let at = Time::from_micros(arg);
                    let seq = next_seq;
                    next_seq += 1;
                    let handle = q.push(at, seq);
                    model.heap.push(Reverse((at, seq)));
                    model.payload.insert(seq, seq);
                    live.push((handle, seq));
                }
                // Pop from both; results must agree exactly.
                2 => {
                    let got = q.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want, "pop order diverged from the reference model");
                    if let Some((_, seq)) = got {
                        live.retain(|&(_, s)| s != seq);
                    }
                }
                // Cancel an arbitrary live handle on both sides.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let (handle, seq) = live.remove(arg as usize % live.len());
                    prop_assert!(q.cancel(handle), "live handle must cancel");
                    model.cancelled.insert(seq);
                    model.payload.remove(&seq);
                }
            }
            prop_assert_eq!(q.len(), model.payload.len(), "len must track the live set");
        }

        // Drain both completely: the tails must agree too.
        loop {
            let got = q.pop();
            let want = model.pop();
            prop_assert_eq!(got, want, "drain order diverged from the reference model");
            if got.is_none() {
                break;
            }
        }
    }

    /// The engine clock never runs backwards, no matter the schedule.
    #[test]
    fn engine_clock_is_monotone(times in vec(0u64..10_000, 1..200)) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(Time::from_micros(t), ());
        }
        let mut prev = Time::ZERO;
        while let Some((at, ())) = e.pop() {
            prop_assert!(at >= prev);
            prev = at;
        }
    }

    /// `next_below` is unbiased enough to cover every residue and never
    /// exceeds its bound.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Sampling without replacement returns distinct, in-range indices.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 1usize..100, k in 0usize..120) {
        let mut rng = DetRng::seed_from(seed);
        let sample = rng.sample_indices(n, k);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len(), "indices must be distinct");
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    /// Split streams are reproducible: the same parent and stream id always
    /// produce the same sequence.
    #[test]
    fn split_is_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::seed_from(seed).split(stream);
        let mut b = DetRng::seed_from(seed).split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
