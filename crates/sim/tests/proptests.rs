//! Property-based tests of the simulation kernel.

use proptest::collection::vec;
use proptest::prelude::*;

use gossip_sim::{CalendarQueue, DetRng, Engine, EventQueue, EventSchedule, HeapQueue};
use gossip_types::Time;

proptest! {
    /// The event queue pops a totally ordered sequence: non-decreasing
    /// times, and insertion order within equal times.
    #[test]
    fn queue_order_is_total_and_stable(times in vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_micros(t), i);
        }
        let mut popped: Vec<(Time, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "times must be non-decreasing");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties must respect insertion order");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in vec(0u64..100, 1..100),
        cancel_mask in vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> =
            times.iter().enumerate().map(|(i, &t)| (i, q.push(Time::from_micros(t), i))).collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*h);
                cancelled.insert(*i);
            }
        }
        let mut survivors: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            survivors.push(e);
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
        for s in survivors {
            prop_assert!(!cancelled.contains(&s));
        }
    }

    /// Model check: the default [`EventQueue`] (the calendar queue) agrees
    /// with a `BinaryHeap`-based reference model on an arbitrary
    /// interleaving of push / pop / cancel operations — including the
    /// stable tie-break at equal timestamps.
    #[test]
    fn queue_matches_binary_heap_reference(
        ops in vec((0u8..4, 0u64..50), 1..300),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Reference model: a plain max-heap of `Reverse<(time, seq)>` plus
        /// a tombstone set — the pre-rewrite design, kept as the oracle.
        struct Model {
            heap: BinaryHeap<Reverse<(Time, u64)>>,
            cancelled: std::collections::HashSet<u64>,
            payload: std::collections::HashMap<u64, u64>,
        }

        impl Model {
            fn pop(&mut self) -> Option<(Time, u64)> {
                while let Some(Reverse((at, seq))) = self.heap.pop() {
                    if self.cancelled.remove(&seq) {
                        continue;
                    }
                    return Some((at, self.payload.remove(&seq).expect("payload")));
                }
                None
            }
        }

        let mut q = EventQueue::new();
        let mut model =
            Model { heap: BinaryHeap::new(), cancelled: Default::default(), payload: Default::default() };
        // Live handles of both sides, kept in lockstep: (queue handle, model seq).
        let mut live: Vec<(gossip_sim::EventHandle, u64)> = Vec::new();
        let mut next_seq = 0u64;

        for &(op, arg) in &ops {
            match op {
                // Push (twice as likely as the other operations so the
                // queue actually grows).
                0 | 1 => {
                    let at = Time::from_micros(arg);
                    let seq = next_seq;
                    next_seq += 1;
                    let handle = q.push(at, seq);
                    model.heap.push(Reverse((at, seq)));
                    model.payload.insert(seq, seq);
                    live.push((handle, seq));
                }
                // Pop from both; results must agree exactly.
                2 => {
                    let got = q.pop();
                    let want = model.pop();
                    prop_assert_eq!(got, want, "pop order diverged from the reference model");
                    if let Some((_, seq)) = got {
                        live.retain(|&(_, s)| s != seq);
                    }
                }
                // Cancel an arbitrary live handle on both sides.
                _ => {
                    if live.is_empty() {
                        continue;
                    }
                    let (handle, seq) = live.remove(arg as usize % live.len());
                    prop_assert!(q.cancel(handle), "live handle must cancel");
                    model.cancelled.insert(seq);
                    model.payload.remove(&seq);
                }
            }
            prop_assert_eq!(q.len(), model.payload.len(), "len must track the live set");
        }

        // Drain both completely: the tails must agree too.
        loop {
            let got = q.pop();
            let want = model.pop();
            prop_assert_eq!(got, want, "drain order diverged from the reference model");
            if got.is_none() {
                break;
            }
        }
    }

    /// Model check: the calendar queue agrees with the reference 4-ary
    /// heap on an arbitrary interleaving of push / pop / pop_before /
    /// cancel — including stale-handle cancels (cancel-after-pop), the
    /// stable tie-break at equal timestamps (the tight 0..8 time range
    /// forces heavy collisions), and the bucket-resize boundaries (the op
    /// count range makes the population repeatedly cross the grow and
    /// shrink thresholds at 32/64/128 live events).
    #[test]
    fn calendar_matches_heap_reference(
        ops in vec((0u8..6, 0u64..50, 0u8..8), 1..400),
    ) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        // Payload → handle pairs of both queues, kept in lockstep.
        let mut live: Vec<(u64, gossip_sim::EventHandle, gossip_sim::EventHandle)> = Vec::new();
        let mut dead: Vec<(gossip_sim::EventHandle, gossip_sim::EventHandle)> = Vec::new();
        let mut next_payload = 0u64;

        for &(op, arg, t) in &ops {
            match op {
                // Push (weighted 3/6 so the queues actually grow and cross
                // the calendar's resize boundaries).
                0..=2 => {
                    let at = Time::from_micros(u64::from(t));
                    let payload = next_payload;
                    next_payload += 1;
                    let hc = cal.push(at, payload);
                    let hh = heap.push(at, payload);
                    live.push((payload, hc, hh));
                }
                // Pop from both; results must agree exactly.
                3 => {
                    let got_cal = cal.pop();
                    let got_heap = heap.pop();
                    prop_assert_eq!(got_cal, got_heap, "pop diverged");
                    if let Some((_, payload)) = got_cal {
                        let i = live.iter().position(|&(p, _, _)| p == payload)
                            .expect("popped payload must be live");
                        let (_, hc, hh) = live.remove(i);
                        // The popped payload's handles are now stale.
                        dead.push((hc, hh));
                    }
                }
                // Horizon-bounded pop.
                4 => {
                    let horizon = Time::from_micros(u64::from(t));
                    let got_cal = cal.pop_before(horizon);
                    let got_heap = heap.pop_before(horizon);
                    prop_assert_eq!(got_cal, got_heap, "pop_before diverged");
                    if let Some((_, payload)) = got_cal {
                        let i = live.iter().position(|&(p, _, _)| p == payload)
                            .expect("popped payload must be live");
                        let (_, hc, hh) = live.remove(i);
                        dead.push((hc, hh));
                    }
                }
                // Cancel: alternately a live handle and a stale one.
                _ => {
                    if arg % 2 == 0 && !live.is_empty() {
                        let (_, hc, hh) = live.remove(arg as usize % live.len());
                        let rc = cal.cancel(hc);
                        let rh = heap.cancel(hh);
                        prop_assert_eq!(rc, rh, "live cancel diverged");
                        prop_assert!(rc, "live handles must cancel");
                        dead.push((hc, hh));
                    } else if !dead.is_empty() {
                        let (hc, hh) = dead[arg as usize % dead.len()];
                        // Cancel-after-pop / double-cancel: both queues must
                        // reject the stale handle.
                        prop_assert!(!cal.cancel(hc), "stale cancel accepted by calendar");
                        prop_assert!(!heap.cancel(hh), "stale cancel accepted by heap");
                    }
                }
            }
            prop_assert_eq!(cal.len(), heap.len(), "len diverged");
            prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek_time diverged");
        }

        // Drain both completely: the tails must agree too.
        loop {
            let got_cal = cal.pop();
            let got_heap = heap.pop();
            prop_assert_eq!(got_cal, got_heap, "drain diverged");
            if got_cal.is_none() {
                break;
            }
        }
    }

    /// Both queue implementations satisfy the trait contract identically
    /// when driven generically (the micro-benchmarks rely on this).
    #[test]
    fn trait_driven_queues_agree(times in vec(0u64..1_000, 1..150)) {
        fn drain<Q: EventSchedule<usize> + Default>(times: &[u64]) -> Vec<(Time, usize)> {
            let mut q = Q::default();
            for (i, &t) in times.iter().enumerate() {
                q.push(Time::from_micros(t), i);
            }
            std::iter::from_fn(|| q.pop()).collect()
        }
        let cal = drain::<CalendarQueue<usize>>(&times);
        let heap = drain::<HeapQueue<usize>>(&times);
        prop_assert_eq!(cal, heap);
    }

    /// The engine clock never runs backwards, no matter the schedule.
    #[test]
    fn engine_clock_is_monotone(times in vec(0u64..10_000, 1..200)) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(Time::from_micros(t), ());
        }
        let mut prev = Time::ZERO;
        while let Some((at, ())) = e.pop() {
            prop_assert!(at >= prev);
            prev = at;
        }
    }

    /// `next_below` is unbiased enough to cover every residue and never
    /// exceeds its bound.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Sampling without replacement returns distinct, in-range indices.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 1usize..100, k in 0usize..120) {
        let mut rng = DetRng::seed_from(seed);
        let sample = rng.sample_indices(n, k);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len(), "indices must be distinct");
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    /// The O(k²) virtual-Fisher–Yates fast path of `sample_indices_into`
    /// consumes the same randomness and produces the same sample as the
    /// materialised O(n) reference loop.
    #[test]
    fn sample_indices_fast_path_matches_reference(
        seed in any::<u64>(),
        n in 1usize..5_000,
        k in 0usize..70,
    ) {
        let mut fast_rng = DetRng::seed_from(seed);
        let mut fast = Vec::new();
        fast_rng.sample_indices_into(n, k, &mut fast);

        // Reference: the classic partial Fisher–Yates over a materialised
        // identity array, drawing from an identically seeded generator.
        let mut ref_rng = DetRng::seed_from(seed);
        let k_eff = k.min(n);
        let mut all: Vec<usize> = (0..n).collect();
        for i in 0..k_eff {
            let j = i + ref_rng.index(n - i);
            all.swap(i, j);
        }
        all.truncate(k_eff);

        prop_assert_eq!(fast, all, "fast path diverged from the reference sample");
        prop_assert_eq!(fast_rng, ref_rng, "fast path consumed different randomness");
    }

    /// Split streams are reproducible: the same parent and stream id always
    /// produce the same sequence.
    #[test]
    fn split_is_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::seed_from(seed).split(stream);
        let mut b = DetRng::seed_from(seed).split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
