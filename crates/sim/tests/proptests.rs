//! Property-based tests of the simulation kernel.

use proptest::collection::vec;
use proptest::prelude::*;

use gossip_sim::{DetRng, Engine, EventQueue};
use gossip_types::Time;

proptest! {
    /// The event queue pops a totally ordered sequence: non-decreasing
    /// times, and insertion order within equal times.
    #[test]
    fn queue_order_is_total_and_stable(times in vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_micros(t), i);
        }
        let mut popped: Vec<(Time, usize)> = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "times must be non-decreasing");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "ties must respect insertion order");
            }
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in vec(0u64..100, 1..100),
        cancel_mask in vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> =
            times.iter().enumerate().map(|(i, &t)| (i, q.push(Time::from_micros(t), i))).collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, h) in &handles {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                q.cancel(*h);
                cancelled.insert(*i);
            }
        }
        let mut survivors: Vec<usize> = Vec::new();
        while let Some((_, e)) = q.pop() {
            survivors.push(e);
        }
        prop_assert_eq!(survivors.len(), times.len() - cancelled.len());
        for s in survivors {
            prop_assert!(!cancelled.contains(&s));
        }
    }

    /// The engine clock never runs backwards, no matter the schedule.
    #[test]
    fn engine_clock_is_monotone(times in vec(0u64..10_000, 1..200)) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(Time::from_micros(t), ());
        }
        let mut prev = Time::ZERO;
        while let Some((at, ())) = e.pop() {
            prop_assert!(at >= prev);
            prev = at;
        }
    }

    /// `next_below` is unbiased enough to cover every residue and never
    /// exceeds its bound.
    #[test]
    fn rng_bounds_hold(seed in any::<u64>(), bound in 1u64..1000) {
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Sampling without replacement returns distinct, in-range indices.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), n in 1usize..100, k in 0usize..120) {
        let mut rng = DetRng::seed_from(seed);
        let sample = rng.sample_indices(n, k);
        prop_assert_eq!(sample.len(), k.min(n));
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sample.len(), "indices must be distinct");
        prop_assert!(sample.iter().all(|&i| i < n));
    }

    /// Split streams are reproducible: the same parent and stream id always
    /// produce the same sequence.
    #[test]
    fn split_is_deterministic(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::seed_from(seed).split(stream);
        let mut b = DetRng::seed_from(seed).split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
