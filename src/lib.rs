//! Umbrella crate for the gossip-streaming workspace.
//!
//! Re-exports the public crates so examples and downstream users can depend
//! on a single package. See the individual crates for full documentation:
//!
//! * [`gossip_core`] — the three-phase gossip protocol (the paper's
//!   contribution);
//! * [`gossip_stream`] — the live-streaming layer (source, player, quality);
//! * [`gossip_fec`] — systematic Reed–Solomon erasure coding;
//! * [`gossip_sim`] / [`gossip_net`] — the deterministic simulation substrate;
//! * [`gossip_experiments`] — the figure-by-figure reproduction harness;
//! * [`gossip_udp`] — the real-socket runtime (thread per node);
//! * [`gossip_reactor`] — the sharded shared-socket runtime (thousands of
//!   live UDP nodes in one process);
//! * [`gossip_deploy`] — the cross-process deployment layer (`gossipd`
//!   node-host binary plus the `gossip-coord` cluster coordinator);
//! * [`gossip_telemetry`] — live runtime observability (lock-free metric
//!   registry, snapshot ring, Prometheus-text scrape endpoint).

#![forbid(unsafe_code)]

pub use gossip_adversity as adversity;
pub use gossip_core as core;
pub use gossip_deploy as deploy;
pub use gossip_experiments as experiments;
pub use gossip_fec as fec;
pub use gossip_membership as membership;
pub use gossip_metrics as metrics;
pub use gossip_net as net;
pub use gossip_reactor as reactor;
pub use gossip_sim as sim;
pub use gossip_stream as stream;
pub use gossip_telemetry as telemetry;
pub use gossip_types as types;
pub use gossip_udp as udp;
