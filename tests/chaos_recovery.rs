//! The chaos/recovery acceptance scenario: a live n = 64 reactor cluster
//! under injected kernel faults — an ENOBUFS burst across the stream
//! midpoint plus a one-shot socket kill — must run to completion on BOTH
//! I/O backends, with every recovery mechanism demonstrably engaged and
//! no shard lost.

use gossip_adversity::{AdversitySpec, ChaosSpec};
use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::{ReactorCluster, ReactorOptions};
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::ClusterConfig;

/// The pinned chaos workload: every send between 1.0 s and 1.4 s fails
/// with ENOBUFS (driving the backoff/retain/retry path), and at 1.6 s one
/// socket per shard dies with EBADF (driving the re-bind path).
fn chaos_config() -> ClusterConfig {
    ClusterConfig {
        n: 64,
        gossip: GossipConfig::new(5).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 300_000,
            packet_payload_bytes: 1000,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(3),
        drain_duration: Duration::from_secs(2),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity: AdversitySpec::none().with_chaos(ChaosSpec {
            enobufs_at: Some(Duration::from_millis(1000)),
            enobufs_for: Duration::from_millis(400),
            kill_socket_at: Some(Duration::from_millis(1600)),
            ..ChaosSpec::default()
        }),
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: None,
    }
}

/// Runs the pinned chaos workload on one backend and asserts the recovery
/// story: faults were injected, transient failures backed off and were
/// retried, the killed sockets were re-bound, no shard aborted, and the
/// cluster still streamed.
fn assert_recovers(mmsg: Option<bool>, backend: &str) {
    let options = ReactorOptions { shards: Some(2), mmsg, ..ReactorOptions::default() };
    let report = ReactorCluster::run_with(chaos_config(), options).expect("cluster runs");

    assert_eq!(report.nodes.len(), 64, "every virtual node must report ({backend})");
    assert_eq!(report.aborted_shards, 0, "no shard may abort under chaos ({backend})");

    let rec = report.recovery();
    assert!(rec.faults_injected > 0, "the chaos plan must engage ({backend})");
    assert!(
        rec.send_backoffs > 0,
        "the ENOBUFS burst must drive send backoffs ({backend}): {rec:?}"
    );
    assert!(rec.transients_recovered > 0, "backed-off sends must be retried ({backend}): {rec:?}");
    assert!(
        rec.socket_rebinds >= 2,
        "the socket kill must force a re-bind on each of the 2 shards ({backend}): {rec:?}"
    );

    let total_recv: u64 = report.nodes.iter().map(|n| n.recv_msgs).sum();
    assert!(total_recv > 0, "traffic must keep flowing through recovery ({backend})");
    let avg = report.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 50.0, "the cluster must stream through the faults ({backend}): {avg:.1}%");
}

#[test]
fn enobufs_burst_and_socket_kill_recover_on_the_batched_backend() {
    assert_recovers(Some(true), "mmsg");
}

#[test]
fn enobufs_burst_and_socket_kill_recover_on_the_fallback_backend() {
    assert_recovers(Some(false), "fallback");
}
