//! Integration tests of the real-socket runtimes: the thread-per-node
//! deployment, its agreement with the simulator, and its agreement with
//! the sharded reactor runtime on the same workload.

use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::{ReactorCluster, ReactorOptions};
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::{ClusterConfig, UdpCluster};

fn small_cluster(n: usize, secs: u64) -> ClusterConfig {
    ClusterConfig {
        n,
        gossip: GossipConfig::new(4).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 200_000,
            packet_payload_bytes: 500,
            window: WindowParams::new(10, 3),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 7,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity: gossip_adversity::AdversitySpec::none(),
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: None,
    }
}

/// Injected datagram loss degrades but does not break the deployment: FEC
/// and retransmission cover a few percent of loss on real sockets too.
#[test]
fn udp_cluster_survives_injected_loss() {
    let mut config = small_cluster(8, 4);
    config.inject_loss = 0.02;
    let report = UdpCluster::run(config).expect("cluster runs");
    let avg = report.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 60.0, "2% injected loss should be survivable: {avg}%");
}

/// Crashing receivers mid-run leaves the survivors streaming.
#[test]
fn udp_cluster_survives_crashes() {
    let mut config = small_cluster(10, 5);
    config.crashes = vec![(3, Duration::from_secs(2)), (4, Duration::from_secs(2))];
    let report = UdpCluster::run(config).expect("cluster runs");
    // Judge only the survivors (victims obviously miss late windows).
    let survivors: Vec<_> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        .filter(|(i, _)| ![2usize, 3].contains(i)) // receiver indices of nodes 3 and 4
        .map(|(_, q)| q.complete_fraction())
        .collect();
    let avg = 100.0 * survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(avg >= 60.0, "survivors should keep streaming: {avg:.1}%");
}

/// The loopback deployment disseminates the stream to (almost) every node
/// and the received windows byte-verify through the real Reed–Solomon
/// decoder.
#[test]
fn udp_cluster_disseminates_and_verifies() {
    let report = UdpCluster::run(small_cluster(8, 4)).expect("cluster runs");
    let avg = report.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 80.0, "average quality {avg}% too low for a loopback run");
    assert!(report.windows_verified > 0, "windows must byte-verify");
    let decode_errors: u64 = report.nodes.iter().map(|n| n.decode_errors).sum();
    assert_eq!(decode_errors, 0);
}

/// The sim and the UDP runtime drive the *same* protocol state machine:
/// both must reach high offline quality on an equivalent lightly-loaded
/// workload. (Wall-clock scheduling differs, so agreement is qualitative —
/// both succeed — rather than event-exact.)
#[test]
fn sim_and_udp_agree_qualitatively() {
    // UDP side.
    let udp = UdpCluster::run(small_cluster(8, 4)).expect("cluster runs");
    let udp_q = udp.quality.average_quality_percent(Duration::MAX);

    // Simulated side: same scale regime (light load, ample caps).
    let sim =
        gossip_experiments::Scenario::tiny(6).with_seed(7).with_upload_cap_kbps(Some(2_000)).run();
    let sim_q = sim.quality.average_quality_percent(Duration::MAX);

    assert!(udp_q >= 80.0, "udp quality {udp_q}%");
    assert!(sim_q >= 90.0, "sim quality {sim_q}%");
}

/// Both real-socket runtimes — thread-per-node and the sharded reactor —
/// drive the same state machine under the same configuration and must
/// deliver comparable stream quality: high on both, within a generous
/// noise band of each other (wall-clock scheduling differs, so agreement
/// is statistical, not event-exact).
#[test]
fn threads_and_reactor_agree_on_delivery_quality() {
    let config = small_cluster(8, 4);
    let threads = UdpCluster::run(config.clone()).expect("thread cluster runs");
    let threads_q = threads.quality.average_quality_percent(Duration::MAX);
    assert!(threads_q >= 80.0, "threads quality {threads_q:.1}%");

    // Both reactor I/O paths must agree with the thread runtime: the
    // kernel-batched sendmmsg/recvmmsg backend (where the platform has it;
    // it degrades to the fallback elsewhere) and the portable per-datagram
    // fallback, pinned explicitly.
    for (label, mmsg) in [("mmsg", Some(true)), ("fallback", Some(false))] {
        let opts = ReactorOptions { shards: Some(2), mmsg, ..ReactorOptions::default() };
        let reactor = ReactorCluster::run_with(config.clone(), opts)
            .unwrap_or_else(|e| panic!("reactor ({label}) cluster runs: {e}"));
        let reactor_q = reactor.quality.average_quality_percent(Duration::MAX);
        assert!(reactor_q >= 80.0, "reactor ({label}) quality {reactor_q:.1}%");
        assert!(
            (threads_q - reactor_q).abs() <= 20.0,
            "runtimes disagree: threads {threads_q:.1}% vs reactor ({label}) {reactor_q:.1}%"
        );
        assert!(reactor.windows_verified > 0, "reactor ({label}) windows must byte-verify too");
        let io = reactor.io_stats().expect("the reactor reports shard stats");
        assert_eq!(io.frame_errors, 0, "no malformed framing on loopback ({label})");
        assert!(io.datagrams_sent > 0 && io.datagrams_received > 0);
    }
}

/// Shapers actually limit throughput: with a tight cap, a node cannot send
/// faster than configured.
#[test]
fn shaper_limits_throughput() {
    let mut config = small_cluster(4, 3);
    config.upload_cap_bps = Some(300_000);
    let report = UdpCluster::run(config).expect("cluster runs");
    let elapsed_secs = 5.0; // 3 s stream + 2 s drain
    for node in report.nodes.iter().skip(1) {
        let kbps = node.sent_bytes as f64 * 8.0 / 1000.0 / elapsed_secs;
        assert!(kbps <= 330.0, "node {} sent {kbps:.0} kbps through a 300 kbps shaper", node.id);
    }
}

/// The thread-per-node runtime consumes the same declarative adversity
/// spec as the reactor, for the subset a fixed thread pool can host:
/// one-shot crashes (mapped onto per-thread crash deadlines), free-riders
/// and bandwidth classes.
#[test]
fn threads_runtime_consumes_catastrophic_spec() {
    use gossip_adversity::AdversitySpec;
    use gossip_types::Time;

    let mut config = small_cluster(12, 5);
    config.gossip = config.gossip.with_refresh_rounds(Some(1));
    config.adversity =
        AdversitySpec::none().with_catastrophic(Duration::from_secs(2), 0.25).with_free_riders(0.2);
    let compiled = config.compiled_adversity();
    let dead = compiled.timeline.dead_at(Time::MAX);
    assert_eq!(dead.len(), 3, "25% of 12");

    let report = UdpCluster::run(config).expect("cluster runs");
    for v in &dead {
        let victim = report.quality.nodes()[v.index() - 1].complete_fraction();
        assert!(victim < 1.0 - 1e-9, "victim {v} completed every window ({victim})");
    }
    let survivors: Vec<f64> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        .filter(|(r, _)| !dead.iter().any(|v| v.index() == r + 1))
        .map(|(_, q)| 100.0 * q.complete_fraction())
        .collect();
    let avg = survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(avg >= 60.0, "survivors should keep streaming: {avg:.1}%");
}

/// Byzantine serve-corruptors on the thread runtime: every thread maps its
/// own outputs through the shared corruption helpers, the honest threads'
/// checksum verification catches the poisoned serves, and the per-node
/// reports aggregate the resilience counters.
#[test]
fn threads_runtime_detects_byzantine_corruption() {
    use gossip_adversity::{AdversitySpec, ByzantineMix};

    let mut config = small_cluster(12, 5);
    config.gossip = config.gossip.with_refresh_rounds(Some(1));
    config.adversity = AdversitySpec::none().with_byzantine(0.25, ByzantineMix::serve_corruptors());
    let compiled = config.compiled_adversity();
    let corruptors: Vec<usize> = compiled
        .profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| p.byzantine.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(!corruptors.is_empty() && !corruptors.contains(&0), "receivers only, never the source");

    let report = UdpCluster::run(config).expect("cluster runs");
    let res = report.resilience();
    assert!(res.corrupted_events_detected > 0, "poisoned serves must trip the checksum");

    let honest: Vec<f64> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        .filter(|(r, _)| !corruptors.contains(&(r + 1)))
        .map(|(_, q)| 100.0 * q.complete_fraction())
        .collect();
    let avg = honest.iter().sum::<f64>() / honest.len() as f64;
    assert!(avg >= 60.0, "honest receivers must keep streaming: {avg:.1}%");
}

/// Cyclon-bootstrapped flash-crowd joiners on the *thread* runtime: each
/// joiner's thread parks until its join offset, boots from a bounded
/// random partial view (no tracker push), and catches up on the stream
/// via per-round membership shuffles — same semantics as the reactor's
/// `JoinerBootstrap::Cyclon`, hosted by one thread per joiner.
#[test]
fn threads_runtime_hosts_cyclon_joiners() {
    use gossip_adversity::AdversitySpec;
    use gossip_udp::cluster::JoinerBootstrap;

    let mut config = small_cluster(14, 6);
    config.joiner_bootstrap = JoinerBootstrap::Cyclon { degree: 4 };
    config.adversity =
        AdversitySpec::none().with_flash_crowd(Duration::from_secs(2), 4, Duration::from_secs(1));
    let report = UdpCluster::run(config).expect("cluster runs");

    assert_eq!(report.nodes.len(), 18, "joiners must report too");
    let joiners = report.joiner_quality.as_ref().expect("the wave joined mid-stream");
    assert_eq!(joiners.nodes().len(), 4);
    let catch_up = joiners.average_quality_percent(Duration::MAX);
    assert!(
        catch_up >= 40.0,
        "partial-view joiners must catch up without a tracker: {catch_up:.1}%"
    );
    let base = report.quality.average_quality_percent(Duration::MAX);
    assert!(base >= 80.0, "the base swarm must be undisturbed by the wave: {base:.1}%");
}

/// Specs the thread runtime cannot host are rejected loudly instead of
/// silently mis-running: tracker-push joins and rejoins need the reactor.
#[test]
fn threads_runtime_rejects_joins_and_rejoins() {
    use gossip_adversity::AdversitySpec;
    use gossip_udp::cluster::ClusterError;

    let mut config = small_cluster(8, 2);
    config.adversity =
        AdversitySpec::none().with_flash_crowd(Duration::from_secs(1), 4, Duration::ZERO);
    assert!(matches!(UdpCluster::run(config), Err(ClusterError::Unsupported(_))));

    let mut config = small_cluster(8, 2);
    config.adversity = AdversitySpec::none().with_poisson_churn(
        Duration::ZERO,
        Duration::from_secs(2),
        1.0,
        Some(Duration::from_secs(1)),
    );
    assert!(matches!(UdpCluster::run(config), Err(ClusterError::Unsupported(_))));
}
