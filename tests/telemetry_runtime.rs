//! Acceptance tests for the live telemetry layer:
//!
//! * telemetry must be a pure *observer* of the simulator — a telemetered
//!   run is bit-identical to a silent run, and two same-seeded telemetered
//!   runs publish identical counter totals;
//! * the reactor's scrape endpoint must answer **mid-run** with parseable
//!   Prometheus text whose counters advance between scrapes;
//! * a fault storm must be visible in the snapshot series *before* the
//!   run ends — the whole point of live telemetry over post-hoc reports.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use gossip_adversity::{AdversitySpec, ChaosSpec};
use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::{NodeHost, ReactorCluster, ReactorOptions};
use gossip_stream::StreamConfig;
use gossip_telemetry::{Registry, TelemetryConfig, TelemetrySeries};
use gossip_types::Duration;
use gossip_udp::clock::ClusterClock;
use gossip_udp::cluster::ClusterConfig;

/// Sums one labelled family over a scrape's samples.
fn family_sum(samples: &[(String, f64)], family: &str) -> f64 {
    let prefix = format!("{family}{{");
    samples
        .iter()
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, v)| v)
        .sum()
}

/// Sums one labelled family inside snapshot `index` of a series.
fn snapshot_family_sum(series: &TelemetrySeries, index: usize, family: &str) -> f64 {
    let prefix = format!("{family}{{");
    series
        .names
        .iter()
        .zip(&series.snapshots[index].values)
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, &v)| v)
        .sum()
}

#[test]
fn telemetered_sim_runs_are_deterministic() {
    let scenario = gossip_experiments::Scenario::tiny(5).with_seed(7);

    let silent = scenario.run();

    let registry_a = Registry::new();
    let run_a = scenario.run_with_telemetry(&registry_a);
    let registry_b = Registry::new();
    let run_b = scenario.run_with_telemetry(&registry_b);

    // Publication only *reads* the deployment: the telemetered run must be
    // the silent run, event for event.
    assert_eq!(run_a.events_processed, silent.events_processed, "telemetry must not perturb");
    assert_eq!(run_b.events_processed, silent.events_processed, "telemetry must not perturb");

    // And the published totals themselves are part of the deterministic
    // output: same seed, same cells, same values.
    assert_eq!(registry_a.snapshot_names(), registry_b.snapshot_names());
    assert_eq!(registry_a.snapshot_values(), registry_b.snapshot_values());

    let names = registry_a.snapshot_names();
    let values = registry_a.snapshot_values();
    let events = names
        .iter()
        .zip(&values)
        .find(|(n, _)| n.starts_with("sim_events_processed_total"))
        .map(|(_, &v)| v)
        .expect("the sim publishes its event counter");
    assert!(events > 0.0, "the probe must have published at least once");
}

#[test]
fn reactor_endpoint_answers_mid_run_and_counters_advance() {
    let config = ClusterConfig {
        n: 16,
        gossip: GossipConfig::new(4).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 200_000,
            packet_payload_bytes: 500,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(2),
        drain_duration: Duration::from_secs(1),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity: AdversitySpec::none(),
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: Some(TelemetryConfig {
            sample_period: std::time::Duration::from_millis(100),
            ..TelemetryConfig::default()
        }),
    };
    let run_for = ClusterClock::to_std(config.stream_duration + config.drain_duration);
    let host = NodeHost::bind(config, &ReactorOptions::default(), None).expect("host binds");
    let scrape_addr = host.telemetry_addr().expect("telemetry is on");
    let addresses: Arc<Vec<std::net::SocketAddr>> =
        Arc::new(host.local_addresses().iter().map(|&(_, addr)| addr).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let runner =
        std::thread::spawn(move || host.run(addresses, ClusterClock::start(), stop, run_for));

    std::thread::sleep(std::time::Duration::from_millis(800));
    let first = gossip_telemetry::scrape(scrape_addr).expect("first mid-run scrape answers");
    std::thread::sleep(std::time::Duration::from_millis(800));
    let second = gossip_telemetry::scrape(scrape_addr).expect("second mid-run scrape answers");

    let outcome = runner.join().expect("runner thread").expect("run completes");
    assert_eq!(outcome.aborted_shards, 0);

    assert!(!first.is_empty(), "the exposition must parse into samples");
    let recv_family = "gossip_shard_datagrams_received_total";
    let first_recv = family_sum(&first, recv_family);
    let second_recv = family_sum(&second, recv_family);
    assert!(first_recv > 0.0, "datagrams must already be counted mid-run");
    assert!(
        second_recv > first_recv,
        "counters must advance between mid-run scrapes ({first_recv} then {second_recv})"
    );

    let series = outcome.telemetry.expect("the outcome carries the series");
    assert!(series.snapshots.len() >= 5, "the sampler must have kept ring snapshots");
    assert!(series.final_total(recv_family) >= second_recv, "the series ends past the scrapes");
}

#[test]
fn backoff_storm_is_visible_in_the_series_before_run_end() {
    // The chaos plan from the recovery acceptance test — an ENOBUFS burst
    // across 1.0–1.4 s — with the sampler running at 100 ms.
    let config = ClusterConfig {
        n: 64,
        gossip: GossipConfig::new(5).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 300_000,
            packet_payload_bytes: 1000,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(3),
        drain_duration: Duration::from_secs(2),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity: AdversitySpec::none().with_chaos(ChaosSpec {
            enobufs_at: Some(Duration::from_millis(1000)),
            enobufs_for: Duration::from_millis(400),
            ..ChaosSpec::default()
        }),
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: Some(TelemetryConfig {
            sample_period: std::time::Duration::from_millis(100),
            ..TelemetryConfig::default()
        }),
    };
    let options = ReactorOptions { shards: Some(2), ..ReactorOptions::default() };
    let report = ReactorCluster::run_with(config, options).expect("cluster runs");
    assert!(report.recovery().send_backoffs > 0, "the burst must drive backoffs");

    let series = report.telemetry.expect("the report carries the series");
    let family = "gossip_shard_send_backoffs_total";
    let first_visible = (0..series.snapshots.len())
        .find(|&i| snapshot_family_sum(&series, i, family) > 0.0)
        .expect("the backoff counter must appear in the snapshot series");
    assert!(
        first_visible + 1 < series.snapshots.len(),
        "the storm must be visible before the final snapshot ({} of {})",
        first_visible,
        series.snapshots.len()
    );
}
