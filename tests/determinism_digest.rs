//! Pins a digest of a fig1-style run so hot-path rewrites (event queue,
//! node state, message representation) can prove they leave the simulation
//! schedule — and therefore every measured number — byte-identical.
//!
//! The digest folds every observable field of two `RunResult`s (two fanouts
//! of the fig1 sweep at a fixed seed) through FNV-1a. If this test fails
//! after a refactor, the refactor changed simulation *behavior*, not just
//! performance — find out why before updating the constant.

use gossip_experiments::{RunResult, Scenario};
use gossip_types::Duration;

/// FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }
}

/// Folds every observable field of a run into the digest. Floats are hashed
/// by their exact bit patterns, so any drift — however small — is caught.
fn fold_result(h: &mut Fnv, r: &RunResult) {
    h.write(&r.events_processed.to_le_bytes());
    h.write(&u64::from(r.windows_measured).to_le_bytes());
    h.write(&r.source_upload_kbps.to_bits().to_le_bytes());
    for &kbps in &r.upload_kbps {
        h.write(&kbps.to_bits().to_le_bytes());
    }
    for lag_secs in [0u64, 5, 10, 20] {
        let pct = r.quality.percent_viewing(0.01, Duration::from_secs(lag_secs));
        h.write(&pct.to_bits().to_le_bytes());
    }
    let offline = r.quality.percent_viewing(0.01, Duration::MAX);
    h.write(&offline.to_bits().to_le_bytes());
    h.write_str(&format!("{:?}", r.protocol));
    h.write_str(&format!("{:?}", r.net));
    for series in [&r.timeline.delivered, &r.timeline.queued_bytes, &r.timeline.dropped] {
        for &(at, v) in series.samples() {
            h.write_str(&format!("{at:?}"));
            h.write(&v.to_bits().to_le_bytes());
        }
    }
}

fn digest() -> u64 {
    let mut h = Fnv::new();
    for fanout in [5usize, 7] {
        let result = Scenario::tiny(fanout).with_seed(42).run();
        fold_result(&mut h, &result);
    }
    h.0
}

/// The digest of the current schedule. Re-pinned deliberately when the
/// validate-before-relay layer landed: every serve now carries a 4-byte
/// payload checksum (the simulated limiter charges the extra wire bytes)
/// and `ProtocolStats` grew resilience counters, both of which fold into
/// the digest. The previous pin, for the archaeologically minded, was
/// `0xc5dc_40e4_1659_a64b`. Any *other* drift is still a bug: the two
/// tests below must always agree with each other, and
/// `empty_adversity_spec_leaves_digest_pinned` proves an empty spec draws
/// nothing from the compile stream.
const PINNED_DIGEST: u64 = 0xe79d_a93c_9dea_6e92;

#[test]
fn fig1_style_digest_is_pinned() {
    let got = digest();
    assert_eq!(
        got, PINNED_DIGEST,
        "RunResult digest changed: got {got:#018x}, pinned {PINNED_DIGEST:#018x} — \
         the simulation schedule is no longer byte-identical"
    );
}

#[test]
fn digest_is_reproducible_within_a_process() {
    assert_eq!(digest(), digest());
}

/// The adversity regression of the spec engine: attaching an explicitly
/// empty `AdversitySpec` must leave the digest byte-identical to the
/// pinned constant — a no-adversity run draws nothing from the compile
/// stream and schedules no fault events, so the simulation schedule
/// cannot move by a single microsecond.
#[test]
fn empty_adversity_spec_leaves_digest_pinned() {
    use gossip::adversity::AdversitySpec;

    let mut h = Fnv::new();
    for fanout in [5usize, 7] {
        let result =
            Scenario::tiny(fanout).with_seed(42).with_adversity(AdversitySpec::none()).run();
        fold_result(&mut h, &result);
    }
    assert_eq!(
        h.0, PINNED_DIGEST,
        "an empty adversity spec must not perturb the simulation schedule"
    );
}

/// The chaos regression of the spec engine: an explicitly empty `[chaos]`
/// section compiles to the inert plan without drawing from the compile
/// stream, so the simulation digest stays byte-identical to the pinned
/// constant. (Chaos only ever acts at the reactor's syscall boundary; the
/// simulator must be untouched even by a *non*-empty section, but the
/// empty one must be free everywhere.)
#[test]
fn empty_chaos_section_leaves_digest_pinned() {
    use gossip::adversity::{AdversitySpec, ChaosSpec};

    let mut h = Fnv::new();
    for fanout in [5usize, 7] {
        let spec = AdversitySpec::none().with_chaos(ChaosSpec::none());
        let result = Scenario::tiny(fanout).with_seed(42).with_adversity(spec).run();
        fold_result(&mut h, &result);
    }
    assert_eq!(h.0, PINNED_DIGEST, "an empty [chaos] section must not perturb the schedule");
}
