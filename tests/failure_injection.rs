//! Failure-injection integration tests: loss storms, bursty channels,
//! starved links and pathological configurations.

use gossip_experiments::Scenario;
use gossip_net::{LatencyModel, LossModel};
use gossip_types::Duration;

/// Heavy random loss (5% of datagrams) degrades quality but does not
/// deadlock or panic, and FEC + retransmission keep the average usable.
#[test]
fn heavy_random_loss() {
    let result = Scenario::tiny(6).with_seed(21).with_loss(LossModel::Bernoulli(0.05)).run();
    let avg = result.quality.average_quality_percent(Duration::MAX);
    assert!(avg > 50.0, "5% loss should be survivable: {avg}%");
    assert!(result.protocol.retransmit_requests > 0);
}

/// Bursty (Gilbert–Elliott) loss is harsher than the same average rate of
/// independent loss, but the run completes and delivers.
#[test]
fn bursty_loss() {
    let bursty = LossModel::GilbertElliott {
        p_enter_bad: 0.005,
        p_exit_bad: 0.1,
        loss_good: 0.001,
        loss_bad: 0.5,
    };
    let result = Scenario::tiny(6).with_seed(23).with_loss(bursty).run();
    let avg = result.quality.average_quality_percent(Duration::MAX);
    assert!(avg > 40.0, "bursty loss should be survivable: {avg}%");
}

/// Starved uplinks (caps below the stream rate) cannot carry the stream —
/// quality collapses rather than hangs. The source must be capped too: at
/// 20 nodes an unconstrained source with `source_fanout = 7` can feed most
/// of the swarm single-handedly.
#[test]
fn starved_uplinks_collapse_cleanly() {
    let mut scenario = Scenario::tiny(6).with_seed(25).with_upload_cap_kbps(Some(150));
    scenario.source_uncapped = false;
    let result = scenario.run();
    let avg = result.quality.average_quality_percent(Duration::from_secs(20));
    assert!(avg < 60.0, "150 kbps caps cannot carry a 300 kbps stream: {avg}%");
    assert!(result.net.msgs_dropped > 0, "overload must surface as drops");
}

/// Extreme latency heterogeneity (all nodes slow and jittery) stretches lag
/// but the stream still arrives offline.
#[test]
fn slow_jittery_network() {
    let slow = LatencyModel::TwoClass {
        good: (Duration::from_millis(200), Duration::from_millis(400)),
        bad: (Duration::from_millis(500), Duration::from_millis(900)),
        bad_fraction: 0.5,
        jitter_sigma: 0.5,
    };
    let result = Scenario::tiny(6).with_seed(27).with_latency(slow).run();
    let offline = result.quality.average_quality_percent(Duration::MAX);
    assert!(offline > 80.0, "latency alone must not lose data: {offline}%");
}

/// A shallow throttling queue (aggressive drop-tail) hurts more than the
/// default deep queue under the same workload.
#[test]
fn shallow_queue_hurts() {
    let deep = Scenario::tiny(8).with_seed(29).run();
    let shallow =
        Scenario::tiny(8).with_seed(29).with_max_queue_delay(Duration::from_millis(200)).run();
    let q_deep = deep.quality.average_quality_percent(Duration::MAX);
    let q_shallow = shallow.quality.average_quality_percent(Duration::MAX);
    assert!(
        q_deep + 1e-9 >= q_shallow,
        "deep queue ({q_deep}%) must not lose to shallow ({q_shallow}%)"
    );
}

/// Fanout larger than the membership saturates at n-1 and still works.
#[test]
fn oversized_fanout_saturates() {
    let result = Scenario::tiny(50).with_seed(31).run();
    // 20-node deployment: fanout clamps to 19. The run completes; quality
    // is whatever the caps allow.
    assert!(result.events_processed > 1000);
}

/// Disabling FEC (no parity) makes every single packet loss a window loss;
/// parity buys a visible margin under loss.
#[test]
fn fec_margin_under_loss() {
    let loss = LossModel::Bernoulli(0.01);
    let mut no_fec = Scenario::tiny(6).with_seed(33).with_loss(loss);
    no_fec.stream.window = gossip_fec::WindowParams::new(30, 0);
    let mut with_fec = Scenario::tiny(6).with_seed(33).with_loss(loss);
    with_fec.stream.window = gossip_fec::WindowParams::new(30, 4);

    let q_none = no_fec.run().quality.average_quality_percent(Duration::MAX);
    let q_fec = with_fec.run().quality.average_quality_percent(Duration::MAX);
    assert!(q_fec + 1e-9 >= q_none, "parity must not hurt: with {q_fec}% vs without {q_none}%");
}
