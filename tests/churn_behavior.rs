//! Integration tests for behaviour under catastrophic churn (the paper's
//! Figures 7 and 8).

use gossip_core::GossipConfig;
use gossip_experiments::Scenario;
use gossip_net::ChurnPlan;
use gossip_sim::DetRng;
use gossip_types::{Duration, NodeId, Time};

fn churned(fanout: usize, x: Option<u32>, pct: f64, seed: u64) -> gossip_experiments::RunResult {
    let scenario = Scenario::tiny(fanout).with_seed(seed);
    let mut rng = DetRng::seed_from(seed).split(0xC0FFEE);
    let churn = ChurnPlan::catastrophic(
        Time::ZERO + scenario.stream_duration / 2,
        scenario.n,
        pct,
        &[NodeId::new(0)],
        &mut rng,
    );
    scenario.with_gossip(GossipConfig::new(fanout).with_refresh_rounds(x)).with_churn(churn).run()
}

/// A fully dynamic view keeps delivering most of the stream through heavy
/// churn — Figure 8's headline.
#[test]
fn x1_survives_heavy_churn() {
    for pct in [0.2, 0.5] {
        let result = churned(6, Some(1), pct, 11);
        let avg = result.quality.average_quality_percent(Duration::from_secs(20));
        assert!(avg > 70.0, "X=1 at {:.0}% churn: avg quality {avg}%", pct * 100.0);
    }
}

/// Averaged over seeds, the dynamic view (X=1) beats the static mesh
/// (X=∞) under churn. Single runs are noisy at 20 nodes — the paper itself
/// reports wild variability for static meshes — so this compares means.
#[test]
fn x1_beats_static_mesh_on_average() {
    let seeds = [3u64, 11, 23, 31];
    let mean = |x: Option<u32>| {
        seeds
            .iter()
            .map(|&s| {
                churned(6, x, 0.35, s).quality.average_quality_percent(Duration::from_secs(20))
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let dynamic = mean(Some(1));
    let static_mesh = mean(None);
    assert!(
        dynamic + 2.0 >= static_mesh,
        "X=1 mean ({dynamic:.1}%) should not trail X=inf mean ({static_mesh:.1}%)"
    );
}

/// Victims stop consuming *and* serving: the survivors' reports exclude
/// them entirely.
#[test]
fn victims_disappear_from_reports() {
    let scenario = Scenario::tiny(6).with_seed(13);
    let n = scenario.n;
    let mut rng = DetRng::seed_from(13);
    let churn = ChurnPlan::catastrophic(Time::from_secs(5), n, 0.3, &[NodeId::new(0)], &mut rng);
    let victims = churn.all_victims().len();
    assert!(victims > 0);
    let result = scenario.with_churn(churn).run();
    assert_eq!(result.quality.nodes().len(), n - 1 - victims);
    assert_eq!(result.upload_kbps.len(), n - 1 - victims);
}

/// Churn at the very start (before any dissemination) still lets the
/// survivors view the stream.
#[test]
fn early_churn_is_survivable() {
    let scenario = Scenario::tiny(6).with_seed(17);
    let mut rng = DetRng::seed_from(17);
    let churn = ChurnPlan::catastrophic(
        Time::from_millis(100),
        scenario.n,
        0.25,
        &[NodeId::new(0)],
        &mut rng,
    );
    let result = scenario.with_churn(churn).run();
    let avg = result.quality.average_quality_percent(Duration::MAX);
    assert!(avg > 80.0, "early churn should not doom the survivors: {avg}%");
}

/// 80% simultaneous failure degrades but does not zero the stream for
/// survivors with a dynamic view (Figure 8's rightmost point).
#[test]
fn extreme_churn_degrades_gracefully() {
    let result = churned(6, Some(1), 0.8, 19);
    let avg = result.quality.average_quality_percent(Duration::from_secs(20));
    assert!(avg > 30.0, "X=1 at 80% churn should still deliver something: {avg}%");
    let baseline = churned(6, Some(1), 0.0, 19);
    assert!(
        baseline.quality.average_quality_percent(Duration::from_secs(20)) >= avg,
        "churn cannot improve quality"
    );
}
