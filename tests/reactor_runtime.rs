//! Integration tests of the sharded shared-socket runtime: crash
//! resilience under heavy churn and sanity of the aggregate reports at a
//! scale no thread-per-node deployment is asked to reach in tests.

use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::{ReactorCluster, ReactorOptions};
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::ClusterConfig;

fn reactor_cluster(n: usize, secs: u64) -> ClusterConfig {
    ClusterConfig {
        n,
        gossip: GossipConfig::new(4).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 200_000,
            packet_payload_bytes: 500,
            window: WindowParams::new(10, 3),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 11,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity: gossip_adversity::AdversitySpec::none(),
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: None,
    }
}

/// Pinned shard geometry so test behaviour does not depend on the box's
/// core count (and parallel tests do not oversubscribe it).
fn small_reactor() -> ReactorOptions {
    ReactorOptions { shards: Some(2), ..ReactorOptions::default() }
}

/// Crash-injection: 30 % of the virtual nodes die mid-stream; the
/// survivors' windows must still complete. Gossip's redundant id
/// dissemination makes the cluster indifferent to even heavy churn — the
/// paper's central robustness claim, exercised here on real shared
/// sockets.
#[test]
fn reactor_survives_thirty_percent_crashes() {
    let mut config = reactor_cluster(30, 5);
    // Nodes 1..=9 (30 % of 30, never the source) crash at 2 s.
    config.crashes = (1..=9).map(|i| (i, Duration::from_secs(2))).collect();
    let report = ReactorCluster::run_with(config.clone(), small_reactor()).expect("cluster runs");

    let crashed: Vec<usize> = config.crashes.iter().map(|&(node, _)| node).collect();
    let survivors: Vec<f64> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        // Receiver index r is node r + 1 (node 0 is the source).
        .filter(|(r, _)| !crashed.contains(&(r + 1)))
        .map(|(_, q)| q.complete_fraction())
        .collect();
    assert_eq!(survivors.len(), 20, "29 receivers minus 9 victims");
    let avg = 100.0 * survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(avg >= 60.0, "survivors should keep streaming: {avg:.1}%");

    // The victims really did go dark: windows published after the 2 s
    // crash can never reach a node that drops every datagram, so no
    // victim can have completed all measured windows of a 5 s stream.
    for &c in &crashed {
        let victim = report.quality.nodes()[c - 1].complete_fraction();
        assert!(victim < 1.0 - 1e-9, "crashed node {c} completed every window ({victim})");
    }
}

/// Aggregate sanity at n = 256: every node reports, ids come back
/// complete and ordered, the source actually streamed, traffic flowed
/// through the shared sockets, and nothing on loopback was malformed.
/// (Wall-clock scheduling makes exact per-run numbers non-deterministic;
/// these are the invariants that must hold on every run.)
#[test]
fn reactor_reports_are_sane_at_n256() {
    let config = reactor_cluster(256, 4);
    let report = ReactorCluster::run_with(config, ReactorOptions::default()).expect("cluster runs");

    assert_eq!(report.nodes.len(), 256, "every virtual node must report");
    assert_eq!(report.receivers(), 255);
    for (i, node) in report.nodes.iter().enumerate() {
        assert_eq!(node.id.index(), i, "reports must come back sorted by id");
    }

    let source = &report.nodes[0];
    assert!(source.sent_msgs > 0, "the source must have proposed");
    assert!(source.protocol.events_delivered > 0, "the source publishes to itself");

    let total_sent: u64 = report.nodes.iter().map(|n| n.sent_msgs).sum();
    let total_recv: u64 = report.nodes.iter().map(|n| n.recv_msgs).sum();
    let decode_errors: u64 = report.nodes.iter().map(|n| n.decode_errors).sum();
    assert!(total_sent > 1000, "a 256-node cluster generates real traffic: {total_sent}");
    assert!(total_recv > 0, "shared sockets must deliver");
    assert_eq!(decode_errors, 0, "no malformed datagrams on loopback");

    assert!(report.windows_measured >= 3);
    assert!(report.windows_verified > 0, "windows must byte-verify through Reed-Solomon");
    let avg = report.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 50.0, "a lightly loaded 256-node loopback run should stream: {avg:.1}%");
}

/// The acceptance scenario of the adversity subsystem: the paper's
/// Figure 7/8 catastrophe — 80 % of the nodes crash simultaneously at the
/// stream midpoint under `X = 1` partner refresh — expressed as ONE
/// declarative `AdversitySpec` and applied unchanged to both the
/// event-driven simulator and the live reactor runtime. The spec compiles
/// from the same `(spec, n, seed)` in both, so the two runs kill the
/// *identical* victim set; survivors must keep streaming comparably and
/// every victim must go dark in both worlds.
#[test]
fn figure_7_8_spec_runs_on_sim_and_reactor() {
    use gossip_adversity::AdversitySpec;
    use gossip_experiments::Scenario;
    use gossip_net::{LatencyModel, LossModel};
    use gossip_types::Time;

    let n = 50;
    let seed = 11;
    let spec = AdversitySpec::none().with_catastrophic(Duration::from_secs(3), 0.8);

    // Live reactor run. Fanout ~ln(n)+2, the paper's optimum for the
    // deployment size (its Figure 7/8 numbers are at the optimal fanout).
    let mut config = reactor_cluster(n, 6);
    config.seed = seed;
    config.gossip = GossipConfig::new(6)
        .with_gossip_period(Duration::from_millis(100))
        .with_refresh_rounds(Some(1));
    config.adversity = spec.clone();
    let report = ReactorCluster::run_with(config.clone(), small_reactor()).expect("cluster runs");

    // The same workload on the simulator (loopback-like network: tiny
    // constant latency, no in-network loss).
    let mut scenario = Scenario::tiny(6)
        .with_seed(seed)
        .with_gossip(config.gossip.clone())
        .with_adversity(spec.clone());
    scenario.n = n;
    scenario.stream = config.stream;
    scenario.upload_cap_bps = config.upload_cap_bps;
    scenario.stream_duration = config.stream_duration;
    scenario.drain_duration = config.drain_duration;
    scenario.latency = LatencyModel::Constant(Duration::from_micros(200));
    scenario.loss = LossModel::None;
    scenario.measure_from_window = 1; // match the cluster report's window range
    let sim = scenario.run();

    // Both runtimes compiled the identical timeline.
    let compiled = config.compiled_adversity();
    let dead = compiled.timeline.dead_at(Time::MAX);
    assert_eq!(dead.len(), 40, "80% of 50");

    // Dark victims, both worlds: the simulator excludes them from the
    // survivor report entirely; the reactor reports them with incomplete
    // windows (nothing can reach a node that drops every datagram).
    assert_eq!(sim.quality.nodes().len(), n - 1 - dead.len());
    for v in &dead {
        let victim = report.quality.nodes()[v.index() - 1].complete_fraction();
        assert!(victim < 1.0 - 1e-9, "victim {v} completed every window ({victim})");
    }

    // Comparable survivor quality. Real-time scheduling on a shared box is
    // noisy, so the band is generous — but both must stream, and they must
    // not tell opposite stories.
    let sim_avg = sim.quality.average_quality_percent(Duration::MAX);
    let survivors: Vec<f64> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        .filter(|(r, _)| !dead.iter().any(|v| v.index() == r + 1))
        .map(|(_, q)| 100.0 * q.complete_fraction())
        .collect();
    assert_eq!(survivors.len(), n - 1 - dead.len());
    let reactor_avg = survivors.iter().sum::<f64>() / survivors.len() as f64;
    // n = 50 is far below the paper's 230-node deployment, so absolute
    // completeness after an 80 % massacre is scale-limited; the claim
    // under test is that both runtimes keep streaming AND agree.
    assert!(sim_avg >= 40.0, "sim survivors must keep streaming: {sim_avg:.1}%");
    assert!(reactor_avg >= 40.0, "reactor survivors must keep streaming: {reactor_avg:.1}%");
    assert!(
        (sim_avg - reactor_avg).abs() <= 35.0,
        "sim ({sim_avg:.1}%) and reactor ({reactor_avg:.1}%) disagree beyond the band"
    );
}

/// The adversarial-resilience acceptance scenario: ONE TOML spec with 20 %
/// serve-corrupting Byzantine peers, parsed once and applied unchanged to
/// both the simulator and the live reactor. Both runtimes compile the
/// identical corruptor set from `(spec, n, seed)`; with the defenses on
/// (the default) both must detect every poisoned Serve, keep the honest
/// receivers streaming, and agree within the wall-clock noise band.
#[test]
fn byzantine_toml_spec_runs_on_sim_and_reactor() {
    use gossip_adversity::AdversitySpec;
    use gossip_experiments::Scenario;
    use gossip_net::{LatencyModel, LossModel};

    let toml = "[byzantine]\nfraction = 0.2\nserve_corrupt = 1.0\n";
    let spec = AdversitySpec::from_toml_str(toml).expect("the TOML grammar covers byzantine");

    let n = 40;
    let seed = 7;
    let mut config = reactor_cluster(n, 6);
    config.seed = seed;
    config.gossip = GossipConfig::new(6)
        .with_gossip_period(Duration::from_millis(100))
        .with_refresh_rounds(Some(1));
    config.adversity = spec.clone();

    // Both runtimes compile the identical corruptor set.
    let compiled = config.compiled_adversity();
    let corruptors: Vec<usize> = compiled
        .profiles
        .iter()
        .enumerate()
        .filter(|(_, p)| p.byzantine.is_some())
        .map(|(i, _)| i)
        .collect();
    assert!(
        !corruptors.is_empty() && !corruptors.contains(&0),
        "receivers corrupt, never the source"
    );

    let report = ReactorCluster::run_with(config.clone(), small_reactor()).expect("cluster runs");

    // The same workload on the simulator (loopback-like network).
    let mut scenario = Scenario::tiny(6)
        .with_seed(seed)
        .with_gossip(config.gossip.clone())
        .with_adversity(spec.clone());
    scenario.n = n;
    scenario.stream = config.stream;
    scenario.upload_cap_bps = config.upload_cap_bps;
    scenario.stream_duration = config.stream_duration;
    scenario.drain_duration = config.drain_duration;
    scenario.latency = LatencyModel::Constant(Duration::from_micros(200));
    scenario.loss = LossModel::None;
    scenario.measure_from_window = 1;
    let sim = scenario.run();

    // Every corruption is counted, in both worlds: corruptors tamper every
    // Serve they send, so with traffic flowing the checksum must trip.
    assert!(sim.protocol.corrupted_events_detected > 0, "the sim must detect poisoned serves");
    assert!(sim.protocol.corrupt_rerequests > 0, "detected corruption is re-requested");
    let res = report.resilience();
    assert!(res.corrupted_events_detected > 0, "the reactor must detect poisoned serves");

    // Honest receivers keep streaming in both runtimes, and the two tell
    // the same story (generous band: wall-clock scheduling is noisy).
    let honest_avg = |qualities: &[gossip_stream::NodeQuality]| {
        let honest: Vec<f64> = qualities
            .iter()
            .enumerate()
            // Quality index r is node r + 1 (node 0 is the source).
            .filter(|(r, _)| !corruptors.contains(&(r + 1)))
            .map(|(_, q)| 100.0 * q.complete_fraction())
            .collect();
        honest.iter().sum::<f64>() / honest.len() as f64
    };
    let sim_avg = honest_avg(sim.quality.nodes());
    let reactor_avg = honest_avg(report.quality.nodes());
    assert!(sim_avg >= 60.0, "sim honest receivers must keep streaming: {sim_avg:.1}%");
    assert!(reactor_avg >= 60.0, "reactor honest receivers must keep streaming: {reactor_avg:.1}%");
    assert!(
        (sim_avg - reactor_avg).abs() <= 35.0,
        "sim ({sim_avg:.1}%) and reactor ({reactor_avg:.1}%) disagree beyond the band"
    );
}

/// Partition/heal on the live reactor: the demux drops cross-cell frames
/// while the split is live, so live viewing craters for the cells away
/// from the source, then re-converges once the timeline heals the split.
#[test]
fn partition_heals_and_reconverges_on_reactor() {
    use gossip_adversity::AdversitySpec;
    use gossip_experiments::figures::adversity::partition_phases;

    let split_at = Duration::from_secs(2);
    let heal_at = Duration::from_secs(5);
    let mut config = reactor_cluster(24, 8);
    config.gossip = GossipConfig::new(5)
        .with_gossip_period(Duration::from_millis(100))
        .with_refresh_rounds(Some(1));
    config.adversity = AdversitySpec::none().with_partition(split_at, heal_at, 2);
    let report = ReactorCluster::run_with(config.clone(), small_reactor()).expect("cluster runs");

    let p = partition_phases(
        report.quality.nodes(),
        &config.stream,
        1, // the cluster report measures from window 1
        split_at,
        heal_at,
        Duration::from_millis(1500),
    );
    assert!(p.before_20s > 60.0, "pre-split live viewing healthy: {p:?}");
    assert!(p.during_20s < p.before_20s - 20.0, "a 2-cell split must crater live viewing: {p:?}");
    assert!(p.after_20s > p.during_20s, "healing must restore live viewing: {p:?}");
    assert!(p.reconverge_s.is_some(), "the swarm re-converges after the heal: {p:?}");
}

/// A composed spec — Poisson leave/rejoin churn plus a mid-stream flash
/// crowd — runs to completion on the reactor, with the joiners reaching
/// non-trivial completeness over the windows published after they joined.
#[test]
fn reactor_hosts_churn_and_flash_crowd() {
    use gossip_adversity::AdversitySpec;

    let mut config = reactor_cluster(40, 6);
    config.adversity = AdversitySpec::none()
        .with_poisson_churn(
            Duration::ZERO,
            Duration::from_secs(6),
            0.5,
            Some(Duration::from_secs(3)),
        )
        .with_flash_crowd(Duration::from_secs(2), 10, Duration::from_secs(1));
    let compiled = config.compiled_adversity();
    assert_eq!(compiled.total_n, 50);
    let report = ReactorCluster::run_with(config, small_reactor()).expect("cluster runs");

    assert_eq!(report.nodes.len(), 50, "joiners must report too");
    let joiners = report.joiner_quality.as_ref().expect("the wave joined mid-stream");
    assert_eq!(joiners.nodes().len(), 10);
    let catch_up = joiners.average_quality_percent(Duration::MAX);
    assert!(catch_up >= 40.0, "joiners must reach non-trivial completeness: {catch_up:.1}%");

    // The send-batching satellite: shards must report their syscall
    // accounting, and coalescing must never *increase* the syscall count.
    assert!(!report.shard_stats.is_empty());
    let mut total = gossip_udp::report::ShardStats::default();
    for s in &report.shard_stats {
        total.merge(s);
    }
    assert!(total.datagrams_sent > 0);
    let ratio = total.syscalls_per_datagram().expect("traffic flowed");
    assert!(ratio <= 1.0 + 1e-9, "coalescing cannot take more syscalls than datagrams: {ratio}");
}

/// Cyclon-bootstrapped joiners: a flash crowd enters knowing only a
/// bounded random sample of peers — no tracker push tells the swarm about
/// them. Their per-round membership shuffles spread their ids epidemically
/// (established nodes adopt shuffle senders and offered peers on contact),
/// so the joiners must still catch up on the stream, while the base swarm
/// keeps streaming undisturbed.
#[test]
fn cyclon_bootstrapped_joiners_catch_up_without_tracker_push() {
    use gossip_adversity::AdversitySpec;
    use gossip_udp::cluster::JoinerBootstrap;

    let mut config = reactor_cluster(30, 6);
    config.joiner_bootstrap = JoinerBootstrap::Cyclon { degree: 5 };
    config.adversity =
        AdversitySpec::none().with_flash_crowd(Duration::from_secs(2), 8, Duration::from_secs(1));
    let report = ReactorCluster::run_with(config, small_reactor()).expect("cluster runs");

    assert_eq!(report.nodes.len(), 38, "joiners must report too");
    let joiners = report.joiner_quality.as_ref().expect("the wave joined mid-stream");
    assert_eq!(joiners.nodes().len(), 8);
    let catch_up = joiners.average_quality_percent(Duration::MAX);
    assert!(
        catch_up >= 40.0,
        "partial-view joiners must catch up without a tracker: {catch_up:.1}%"
    );
    let base = report.quality.average_quality_percent(Duration::MAX);
    assert!(base >= 80.0, "the base swarm must be undisturbed by the wave: {base:.1}%");
}
