//! Integration tests of the sharded shared-socket runtime: crash
//! resilience under heavy churn and sanity of the aggregate reports at a
//! scale no thread-per-node deployment is asked to reach in tests.

use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::{ReactorCluster, ReactorOptions};
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::ClusterConfig;

fn reactor_cluster(n: usize, secs: u64) -> ClusterConfig {
    ClusterConfig {
        n,
        gossip: GossipConfig::new(4).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 200_000,
            packet_payload_bytes: 500,
            window: WindowParams::new(10, 3),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 11,
        inject_loss: 0.0,
        crashes: Vec::new(),
    }
}

/// Pinned shard geometry so test behaviour does not depend on the box's
/// core count (and parallel tests do not oversubscribe it).
fn small_reactor() -> ReactorOptions {
    ReactorOptions { shards: Some(2), ..ReactorOptions::default() }
}

/// Crash-injection: 30 % of the virtual nodes die mid-stream; the
/// survivors' windows must still complete. Gossip's redundant id
/// dissemination makes the cluster indifferent to even heavy churn — the
/// paper's central robustness claim, exercised here on real shared
/// sockets.
#[test]
fn reactor_survives_thirty_percent_crashes() {
    let mut config = reactor_cluster(30, 5);
    // Nodes 1..=9 (30 % of 30, never the source) crash at 2 s.
    config.crashes = (1..=9).map(|i| (i, Duration::from_secs(2))).collect();
    let report = ReactorCluster::run_with(config.clone(), small_reactor()).expect("cluster runs");

    let crashed: Vec<usize> = config.crashes.iter().map(|&(node, _)| node).collect();
    let survivors: Vec<f64> = report
        .quality
        .nodes()
        .iter()
        .enumerate()
        // Receiver index r is node r + 1 (node 0 is the source).
        .filter(|(r, _)| !crashed.contains(&(r + 1)))
        .map(|(_, q)| q.complete_fraction())
        .collect();
    assert_eq!(survivors.len(), 20, "29 receivers minus 9 victims");
    let avg = 100.0 * survivors.iter().sum::<f64>() / survivors.len() as f64;
    assert!(avg >= 60.0, "survivors should keep streaming: {avg:.1}%");

    // The victims really did go dark: windows published after the 2 s
    // crash can never reach a node that drops every datagram, so no
    // victim can have completed all measured windows of a 5 s stream.
    for &c in &crashed {
        let victim = report.quality.nodes()[c - 1].complete_fraction();
        assert!(victim < 1.0 - 1e-9, "crashed node {c} completed every window ({victim})");
    }
}

/// Aggregate sanity at n = 256: every node reports, ids come back
/// complete and ordered, the source actually streamed, traffic flowed
/// through the shared sockets, and nothing on loopback was malformed.
/// (Wall-clock scheduling makes exact per-run numbers non-deterministic;
/// these are the invariants that must hold on every run.)
#[test]
fn reactor_reports_are_sane_at_n256() {
    let config = reactor_cluster(256, 4);
    let report = ReactorCluster::run_with(config, ReactorOptions::default()).expect("cluster runs");

    assert_eq!(report.nodes.len(), 256, "every virtual node must report");
    assert_eq!(report.receivers(), 255);
    for (i, node) in report.nodes.iter().enumerate() {
        assert_eq!(node.id.index(), i, "reports must come back sorted by id");
    }

    let source = &report.nodes[0];
    assert!(source.sent_msgs > 0, "the source must have proposed");
    assert!(source.protocol.events_delivered > 0, "the source publishes to itself");

    let total_sent: u64 = report.nodes.iter().map(|n| n.sent_msgs).sum();
    let total_recv: u64 = report.nodes.iter().map(|n| n.recv_msgs).sum();
    let decode_errors: u64 = report.nodes.iter().map(|n| n.decode_errors).sum();
    assert!(total_sent > 1000, "a 256-node cluster generates real traffic: {total_sent}");
    assert!(total_recv > 0, "shared sockets must deliver");
    assert_eq!(decode_errors, 0, "no malformed datagrams on loopback");

    assert!(report.windows_measured >= 3);
    assert!(report.windows_verified > 0, "windows must byte-verify through Reed-Solomon");
    let avg = report.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 50.0, "a lightly loaded 256-node loopback run should stream: {avg:.1}%");
}
