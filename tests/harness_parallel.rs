//! The parallel harness's determinism contract: fanning independent
//! `(parameter, seed)` runs across OS threads must produce byte-identical
//! results to running them serially on one thread.

use gossip_experiments::figures::{fanout_sweep, fig1_fanout};
use gossip_experiments::{Scale, Scenario, SweepRunner};

/// `figures::fig1_fanout` through the (parallel) `SweepRunner` produces
/// exactly the numbers of a forced single-thread run.
#[test]
fn fig1_parallel_matches_forced_serial() {
    let seed = 42;
    let parallel = fig1_fanout::sweep(Scale::Tiny, seed);

    // The same sweep, forced through one thread.
    let serial = SweepRunner::serial().run(fanout_sweep(Scale::Tiny), |&fanout| {
        let result = Scenario::at_scale(Scale::Tiny, fanout).with_seed(seed).run();
        (
            fanout,
            result.quality.percent_viewing(0.01, gossip_types::Duration::MAX),
            result.quality.percent_viewing(0.01, gossip_types::Duration::from_secs(20)),
            result.quality.percent_viewing(0.01, gossip_types::Duration::from_secs(10)),
        )
    });

    assert_eq!(parallel.len(), serial.len());
    for (p, (fanout, offline, lag20, lag10)) in parallel.iter().zip(serial) {
        assert_eq!(p.fanout, fanout);
        assert_eq!(p.offline, offline, "offline series differs at fanout {fanout}");
        assert_eq!(p.lag20, lag20, "20 s series differs at fanout {fanout}");
        assert_eq!(p.lag10, lag10, "10 s series differs at fanout {fanout}");
    }
}

/// Full `RunResult`s — not just summary numbers — are identical at 1 and N
/// threads for the same seed list.
#[test]
fn run_results_identical_across_thread_counts() {
    let scenarios: Vec<Scenario> = [(4usize, 7u64), (6, 7), (6, 11), (8, 3)]
        .into_iter()
        .map(|(fanout, seed)| Scenario::tiny(fanout).with_seed(seed))
        .collect();

    let serial = SweepRunner::serial().run_scenarios(scenarios.clone());
    let parallel = SweepRunner::with_threads(4).run_scenarios(scenarios);

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.upload_kbps, b.upload_kbps);
        assert_eq!(a.source_upload_kbps, b.source_upload_kbps);
        assert_eq!(a.windows_measured, b.windows_measured);
        assert_eq!(a.protocol, b.protocol);
        assert_eq!(a.net, b.net);
        assert_eq!(a.timeline.delivered.samples(), b.timeline.delivered.samples());
        assert_eq!(a.timeline.queued_bytes.samples(), b.timeline.queued_bytes.samples());
        assert_eq!(a.timeline.dropped.samples(), b.timeline.dropped.samples());
        let lags = |r: &gossip_experiments::RunResult| -> Vec<f64> {
            (0..6)
                .map(|s| r.quality.percent_viewing(0.01, gossip_types::Duration::from_secs(s * 5)))
                .collect()
        };
        assert_eq!(lags(a), lags(b));
    }
}

/// Oversubscribing threads (more workers than parameters) is harmless.
#[test]
fn more_threads_than_params_is_fine() {
    let out = SweepRunner::with_threads(32)
        .run(vec![1u64, 2], |&seed| Scenario::tiny(5).with_seed(seed).run().events_processed);
    assert_eq!(out.len(), 2);
    assert_ne!(out[0], out[1], "different seeds differ");
}
