//! Cross-crate integration tests: end-to-end dissemination through the
//! simulated deployment.

use gossip_core::GossipConfig;
use gossip_experiments::{Scale, Scenario};
use gossip_types::Duration;

/// With a fanout comfortably above ln(n) and light load, (almost) every
/// node views the whole stream.
#[test]
fn adequate_fanout_reaches_everyone() {
    let result = Scenario::tiny(6).with_seed(3).run();
    let offline = result.quality.percent_viewing(0.01, Duration::MAX);
    assert!(offline >= 85.0, "offline viewing {offline}% too low");
    let avg = result.quality.average_quality_percent(Duration::MAX);
    assert!(avg >= 98.0, "average quality {avg}% too low");
}

/// Far below the ln(n) threshold, dissemination fails for a large share of
/// nodes — the left side of Figure 1.
#[test]
fn starved_fanout_fails() {
    let ok = Scenario::tiny(6).with_seed(5).run();
    let starved = Scenario::tiny(1).with_seed(5).run();
    let ok_q = ok.quality.average_quality_percent(Duration::MAX);
    let starved_q = starved.quality.average_quality_percent(Duration::MAX);
    assert!(
        starved_q < ok_q - 20.0,
        "fanout 1 ({starved_q}%) must be far worse than fanout 6 ({ok_q}%)"
    );
}

/// The same seed reproduces the run event for event; different seeds do
/// not.
#[test]
fn determinism_end_to_end() {
    let a = Scenario::tiny(5).with_seed(77).run();
    let b = Scenario::tiny(5).with_seed(77).run();
    let c = Scenario::tiny(5).with_seed(78).run();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.upload_kbps, b.upload_kbps);
    assert_eq!(
        a.quality.average_quality_percent(Duration::MAX),
        b.quality.average_quality_percent(Duration::MAX)
    );
    assert_ne!(a.events_processed, c.events_processed);
}

/// Upload caps bind: no receiver's long-run upload exceeds its cap.
#[test]
fn caps_are_respected() {
    let result = Scenario::tiny(8).with_seed(2).run();
    for (i, &kbps) in result.upload_kbps.iter().enumerate() {
        assert!(kbps <= 600.0 * 1.02, "receiver {i} upload {kbps} kbps exceeds the 600 kbps cap");
    }
}

/// Quality is monotone in allowed lag, and offline dominates every finite
/// lag.
#[test]
fn quality_is_monotone_in_lag() {
    let result = Scenario::tiny(6).with_seed(9).run();
    let lags: Vec<Duration> =
        (1..=6).map(|s| Duration::from_secs(s * 5)).chain([Duration::MAX]).collect();
    let series: Vec<f64> =
        lags.iter().map(|&l| result.quality.average_quality_percent(l)).collect();
    assert!(
        series.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        "quality must be monotone in lag: {series:?}"
    );
}

/// Disabling retransmission (K = 1) leaves visible holes under loss;
/// the default budget repairs them.
#[test]
fn retransmission_repairs_losses() {
    let lossy = gossip_net::LossModel::Bernoulli(0.01);
    let without = Scenario::tiny(6)
        .with_seed(4)
        .with_loss(lossy)
        .with_gossip(GossipConfig::new(6).with_max_requests(1))
        .run();
    let with = Scenario::tiny(6)
        .with_seed(4)
        .with_loss(lossy)
        .with_gossip(GossipConfig::new(6).with_max_requests(3))
        .run();
    let q_without = without.quality.average_quality_percent(Duration::MAX);
    let q_with = with.quality.average_quality_percent(Duration::MAX);
    assert!(q_with >= q_without, "retransmission must not hurt: K=3 {q_with}% vs K=1 {q_without}%");
    assert!(with.protocol.retransmit_requests > 0, "retransmissions must fire under loss");
}

/// The source is never counted among the receivers' quality reports.
#[test]
fn source_excluded_from_metrics() {
    let scenario = Scenario::tiny(5).with_seed(6);
    let result = scenario.run();
    assert_eq!(result.quality.nodes().len(), scenario.n - 1);
    assert_eq!(result.upload_kbps.len(), scenario.n - 1);
    assert!(result.source_upload_kbps > 0.0);
}

/// Dissemination depth matches epidemic theory: with fanout f over n
/// nodes, packets reach everyone within O(log n / log f) hops.
#[test]
fn dissemination_depth_is_logarithmic() {
    let result = Scenario::tiny(6).with_seed(12).with_depth_tracking().run();
    let depth = result.depth.expect("tracking enabled");
    assert!(depth.deliveries > 1000, "most packets tracked: {depth:?}");
    // ln(20)/ln(6) ≈ 1.7; allow generous slack for the request indirection
    // and retransmissions.
    assert!(depth.mean >= 1.0, "receivers are at least one hop out: {depth:?}");
    assert!(depth.mean <= 5.0, "mean depth should stay logarithmic: {depth:?}");
    assert!(depth.max <= 15, "no pathological chains: {depth:?}");
}

/// Depth tracking is off by default and costs nothing.
#[test]
fn depth_tracking_is_opt_in() {
    let result = Scenario::tiny(5).with_seed(12).run();
    assert!(result.depth.is_none());
}

/// Scale presets expose coherent parameters.
#[test]
fn scale_presets_are_coherent() {
    for scale in [Scale::Full, Scale::Quick, Scale::Tiny] {
        let s = Scenario::at_scale(scale, 5);
        assert_eq!(s.n, scale.nodes());
        assert!(s.last_measured_window() > s.measure_from_window);
        assert!(s.total_duration() > s.stream_duration);
    }
}
