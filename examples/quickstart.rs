//! Quickstart: run a small simulated gossip-streaming deployment and print
//! the paper's two metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A 20-node deployment (1 source + 19 receivers) disseminates a 300 kbps
//! stream through 600 kbps upload caps with the paper's three-phase
//! protocol. The run is deterministic: same seed, same numbers.

use gossip_experiments::Scenario;
use gossip_types::Duration;

fn main() {
    let fanout = 6; // ≈ ln(20) + 3
    let scenario = Scenario::tiny(fanout).with_seed(42);
    println!(
        "running {} nodes, fanout {}, stream {} kbps, caps {} kbps...",
        scenario.n,
        fanout,
        scenario.stream.rate_bps / 1000,
        scenario.upload_cap_bps.map_or(0, |b| b / 1000),
    );

    let result = scenario.run();

    println!("\nstream quality (jitter ≤ 1%):");
    for (label, lag) in [
        ("  5 s lag", Duration::from_secs(5)),
        (" 10 s lag", Duration::from_secs(10)),
        (" 20 s lag", Duration::from_secs(20)),
        ("  offline", Duration::MAX),
    ] {
        println!(
            "{label}: {:5.1}% of nodes view the stream",
            result.quality.percent_viewing(0.01, lag)
        );
    }
    println!(
        "\naverage complete windows (offline): {:.1}%",
        result.quality.average_quality_percent(Duration::MAX)
    );
    let sorted = result.sorted_upload_kbps();
    println!(
        "receiver upload: busiest {:.0} kbps, median {:.0} kbps, lightest {:.0} kbps",
        sorted.first().copied().unwrap_or(0.0),
        sorted.get(sorted.len() / 2).copied().unwrap_or(0.0),
        sorted.last().copied().unwrap_or(0.0),
    );
    println!("source upload: {:.0} kbps", result.source_upload_kbps);
    println!("simulated events processed: {}", result.events_processed);
}
