//! Does the paper's narrow optimal-fanout window survive beyond its own
//! scale? A fig1-style sweep at n ∈ {500, 1000} (vs the paper's n = 230).
//!
//! ```text
//! cargo run --release --example fanout_large_n [n ...]
//! ```
//!
//! The epidemic threshold argument says the optimum should track `ln n`:
//! below it dissemination stalls, a couple above it the stream is complete,
//! far above it the 700 kbps upload caps saturate under PROPOSE/REQUEST
//! overhead and quality collapses again. Each n sweeps fanouts around
//! `ln n` on a shortened stream (30 s — enough for ~20 windows) and checks
//! the trend:
//!
//! 1. deep sub-threshold (fanout 2) must stall — most nodes never see a
//!    complete stream;
//! 2. fanout `⌈ln n⌉ + 2` must deliver a near-perfect stream (≥ 99 %);
//! 3. the *threshold fanout* — the smallest reaching ≥ 99 % — must sit
//!    within ±2 of `⌈ln n⌉`, i.e. the optimum keeps tracking `ln n` as n
//!    grows past the paper's scale.

use gossip_experiments::harness::SweepRunner;
use gossip_experiments::{Scale, Scenario};
use gossip_types::Duration;

/// One sweep row: fanout and offline-viewing quality.
struct Row {
    fanout: usize,
    offline: f64,
    lag20: f64,
}

fn sweep(n: usize, seed: u64) -> Vec<Row> {
    let ln_n = (n as f64).ln().ceil() as usize;
    // 2 … ln n + 4: deep sub-threshold through the plateau, without
    // burning hours of wall clock.
    let fanouts: Vec<usize> = (2..=ln_n + 4).collect();
    SweepRunner::new().run(fanouts, |&fanout| {
        let mut scenario = Scenario::at_scale(Scale::Full, fanout).with_seed(seed);
        scenario.n = n;
        scenario.stream_duration = Duration::from_secs(30);
        scenario.drain_duration = Duration::from_secs(15);
        let result = scenario.run();
        Row {
            fanout,
            offline: result.quality.percent_viewing(0.01, Duration::MAX),
            lag20: result.quality.percent_viewing(0.01, Duration::from_secs(20)),
        }
    })
}

fn main() {
    let ns: Vec<usize> = {
        let args: Vec<usize> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![500, 1000]
        } else {
            args
        }
    };

    for n in ns {
        let ln_n = (n as f64).ln().ceil() as usize;
        println!("n = {n} (⌈ln n⌉ = {ln_n}), 700 kbps caps, 30 s stream:");
        println!("  fanout  offline%  lag20s%");
        let rows = sweep(n, 42);
        for row in &rows {
            println!("  {:>6}  {:>7.1}  {:>7.1}", row.fanout, row.offline, row.lag20);
        }

        let at = |f: usize| rows.iter().find(|r| r.fanout == f).map(|r| r.offline);
        let stalled = at(2).unwrap_or(0.0);
        let above = at(ln_n + 2).unwrap_or(0.0);
        let threshold = rows
            .iter()
            .find(|r| r.offline >= 99.0)
            .map(|r| r.fanout)
            .expect("some fanout in the sweep must reach 99%");

        println!("  → threshold fanout (first ≥ 99%): {threshold}");
        assert!(
            stalled < 50.0,
            "n={n}: fanout 2 reached {stalled:.1}% — sub-threshold gossip should stall"
        );
        assert!(
            above >= 99.0,
            "n={n}: fanout ln n + 2 only reached {above:.1}% — \
             dissemination is failing at this scale"
        );
        assert!(
            threshold.abs_diff(ln_n) <= 2,
            "n={n}: threshold fanout {threshold} strayed from ln n = {ln_n} — \
             the optimal-fanout trend broke at this scale"
        );
        println!("  ✓ optimal-fanout trend holds at n = {n} (threshold ≈ ln n)\n");
    }
}
