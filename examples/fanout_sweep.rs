//! The paper's headline experiment in miniature: sweep the fanout and watch
//! the optimal window appear (Figure 1).
//!
//! ```text
//! cargo run --release --example fanout_sweep [quick|tiny]
//! ```
//!
//! Too small a fanout fails to reach everyone; too large a fanout saturates
//! the upload caps and collapses. The sweet spot sits a little above
//! `ln(n)`.

use gossip_experiments::figures::fig1_fanout;
use gossip_experiments::Scale;

fn main() {
    let scale = match std::env::args().nth(1).as_deref() {
        Some("quick") => Scale::Quick,
        _ => Scale::Tiny,
    };
    println!(
        "sweeping fanout over {} nodes (ln n = {:.1})...\n",
        scale.nodes(),
        (scale.nodes() as f64).ln()
    );
    let figure = fig1_fanout::run(scale, 42);
    println!("{figure}");

    let rows = fig1_fanout::sweep(scale, 42);
    let best = rows
        .iter()
        .max_by(|a, b| a.offline.partial_cmp(&b.offline).expect("finite"))
        .expect("sweep is non-empty");
    println!(
        "best fanout in this run: {} ({:.1}% of nodes at offline viewing)",
        best.fanout, best.offline
    );
}
