//! Catastrophic churn: crash a third of the nodes mid-stream and watch the
//! protocol route around them (Figures 7–8).
//!
//! ```text
//! cargo run --release --example churn_recovery [churn_percent]
//! ```
//!
//! Compares a fully proactive view (`X = 1`, fresh partners every round)
//! with a static mesh (`X = ∞`). With `X = 1` dead partners are replaced by
//! the next random draw within a round; the static mesh keeps proposing
//! into the void.

use gossip_core::GossipConfig;
use gossip_experiments::{Scale, Scenario};
use gossip_net::ChurnPlan;
use gossip_sim::DetRng;
use gossip_types::{Duration, NodeId, Time};

fn main() {
    let pct: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(35);
    assert!(pct <= 90, "leave some survivors");
    let scale = Scale::Tiny;
    let fanout = 6;
    let crash_at = Time::ZERO + scale.stream_duration() / 2;

    println!(
        "{} nodes, fanout {fanout}; {pct}% crash simultaneously at {crash_at}\n",
        scale.nodes()
    );

    for (label, x) in [("X = 1 (fully dynamic)", Some(1)), ("X = inf (static mesh)", None)] {
        let mut rng = DetRng::seed_from(7);
        let churn = ChurnPlan::catastrophic(
            crash_at,
            scale.nodes(),
            f64::from(pct) / 100.0,
            &[NodeId::new(0)],
            &mut rng,
        );
        let gossip = GossipConfig::new(fanout).with_refresh_rounds(x);
        let result = Scenario::at_scale(scale, fanout)
            .with_seed(7)
            .with_gossip(gossip)
            .with_churn(churn)
            .run();
        println!("{label}:");
        println!(
            "  survivors with <1% jitter (20 s lag): {:.1}%",
            result.quality.percent_viewing(0.01, Duration::from_secs(20))
        );
        println!(
            "  average complete windows:             {:.1}%",
            result.quality.average_quality_percent(Duration::from_secs(20))
        );
    }
}
