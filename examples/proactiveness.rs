//! Proactiveness knobs: local view refresh (`X`) vs explicit feed-me
//! requests (`Y`) — Figures 5 and 6 in miniature.
//!
//! ```text
//! cargo run --release --example proactiveness
//! ```
//!
//! `X` controls how often `selectNodes` re-draws the partner set; `Y` makes
//! nodes ask peers to adopt them instead. The paper's conclusion — plain
//! `X = 1` is the sweet spot, and feed-me buys nothing — falls out of the
//! same simulation.

use gossip_experiments::figures::{fig5_refresh, fig6_feedme};
use gossip_experiments::Scale;

fn main() {
    let scale = Scale::Tiny;
    println!("view refresh sweep (X), {} nodes:\n", scale.nodes());
    println!("{}", fig5_refresh::run(scale, 42));
    println!("feed-me sweep (Y), X = inf:\n");
    println!("{}", fig6_feedme::run(scale, 42));
}
