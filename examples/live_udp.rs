//! Live deployment on real UDP sockets: the same protocol core that runs in
//! the simulator, hosted by either real-socket runtime —
//!
//! * `threads` — one thread + one blocking socket per node (hundreds of
//!   nodes);
//! * `reactor` — a few event-loop shards with shared sockets (thousands of
//!   nodes in one process, plus the full adversity feature set: revives
//!   and flash-crowd joins).
//!
//! Both use real wire encoding, real upload shaping and real Reed–Solomon
//! verification of the received windows, and both consume the same
//! declarative adversity spec (the `gossip-adversity` crate):
//!
//! ```text
//! cargo run --release --example live_udp [nodes] [seconds]
//!     [--runtime threads|reactor]
//!     [--adversity <spec.toml>]     # full declarative spec
//!     [--crash-frac <0..1>]         # shorthand: catastrophic crash
//!     [--crash-at <seconds>]        # ... at this offset (default: midway)
//!     [--watch]                     # live telemetry + 1 Hz status line
//! ```
//!
//! `--watch` turns the telemetry layer on (Prometheus endpoint on
//! `127.0.0.1:9898` — point a real scraper at it too) and self-scrapes it
//! once a second, printing a live status line while the run streams:
//!
//! ```text
//! live: completeness 87.3% | 10423 dgram/s | backoff L0 | shed 0
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gossip_adversity::AdversitySpec;
use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::ReactorCluster;
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::{ClusterConfig, UdpCluster};

/// Fixed scrape port for `--watch`: printable in the usage string and easy
/// to point `curl`/Prometheus at while the example streams.
const WATCH_PORT: u16 = 9898;

/// Sums a metric family (both runtimes label per node/shard) over a scrape.
fn family_sum(samples: &[(String, f64)], family: &str) -> f64 {
    let prefix = format!("{family}{{");
    samples
        .iter()
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, v)| v)
        .sum()
}

/// Mean of a gauge family's labelled cells (0 when the family is absent).
fn family_mean(samples: &[(String, f64)], family: &str) -> f64 {
    let prefix = format!("{family}{{");
    let cells: Vec<f64> = samples
        .iter()
        .filter(|(n, _)| n.as_str() == family || n.starts_with(&prefix))
        .map(|(_, v)| *v)
        .collect();
    if cells.is_empty() {
        0.0
    } else {
        cells.iter().sum::<f64>() / cells.len() as f64
    }
}

/// The `--watch` loop: self-scrape the endpoint once a second and print a
/// live status line. Works against either runtime — the thread runtime
/// publishes `gossip_node_*`, the reactor `gossip_shard_*`; completeness
/// and received-datagram families exist in both, the backoff/shed cells
/// only in the reactor (they read 0 under threads).
fn watch_loop(stop: &AtomicBool) {
    let addr = std::net::SocketAddr::from(([127, 0, 0, 1], WATCH_PORT));
    let mut last_recv: Option<f64> = None;
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_secs(1));
        // The endpoint comes up once the cluster starts; until then (and
        // after it stops) the scrape just fails quietly.
        let Ok(samples) = gossip_telemetry::scrape(addr) else { continue };
        let recv = family_sum(&samples, "gossip_shard_datagrams_received_total")
            + family_sum(&samples, "gossip_node_datagrams_received_total");
        let rate = last_recv.map_or(0.0, |prev| (recv - prev).max(0.0));
        last_recv = Some(recv);
        let completeness = {
            let shard = family_mean(&samples, "gossip_shard_completeness_percent");
            let node = family_mean(&samples, "gossip_node_completeness_percent");
            if shard > 0.0 {
                shard
            } else {
                node
            }
        };
        let backoff = samples
            .iter()
            .filter(|(n, _)| n.starts_with("gossip_shard_backoff_level"))
            .map(|(_, v)| *v)
            .fold(0.0_f64, f64::max);
        let shed = family_sum(&samples, "gossip_shard_datagrams_shed_total");
        println!(
            "live: completeness {completeness:.1}% | {rate:.0} dgram/s | backoff L{backoff:.0} | shed {shed:.0}"
        );
    }
}

fn main() {
    let mut positional: Vec<u64> = Vec::new();
    let mut runtime = String::from("threads");
    let mut spec_path: Option<String> = None;
    let mut crash_frac: Option<f64> = None;
    let mut crash_at: Option<f64> = None;
    let mut watch = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runtime" => {
                runtime = args.next().expect("--runtime requires `threads` or `reactor`");
            }
            "--adversity" => {
                spec_path = Some(args.next().expect("--adversity requires a spec.toml path"));
            }
            "--crash-frac" => {
                let v = args.next().expect("--crash-frac requires a fraction");
                crash_frac = Some(v.parse().expect("--crash-frac must be a number in [0, 1]"));
            }
            "--crash-at" => {
                let v = args.next().expect("--crash-at requires seconds");
                crash_at = Some(v.parse().expect("--crash-at must be a number of seconds"));
            }
            "--watch" => watch = true,
            other => positional.push(other.parse().unwrap_or_else(|_| {
                panic!(
                    "unexpected argument {other:?} (usage: live_udp [nodes] [seconds] \
                     [--runtime threads|reactor] [--adversity spec.toml] \
                     [--crash-frac f] [--crash-at secs] [--watch])"
                )
            })),
        }
    }
    let n = positional.first().map_or(12, |&v| v as usize);
    let secs = positional.get(1).copied().unwrap_or(6);
    assert!(n >= 2, "need a source and at least one receiver");

    // Adversity: a full spec file, or the catastrophic-crash shorthand.
    let mut adversity = match &spec_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            AdversitySpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{e}"))
        }
        None => AdversitySpec::none(),
    };
    if let Some(frac) = crash_frac {
        let at = crash_at.unwrap_or(secs as f64 / 2.0);
        adversity = adversity.with_catastrophic(Duration::from_secs_f64(at), frac);
    }

    let config = ClusterConfig {
        n,
        gossip: GossipConfig::new(5).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 300_000,
            packet_payload_bytes: 1000,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
        adversity,
        joiner_bootstrap: gossip_udp::cluster::JoinerBootstrap::Tracker,
        telemetry: watch.then(|| gossip_telemetry::TelemetryConfig::on_port(WATCH_PORT)),
    };

    let faults = config.compiled_adversity();
    println!(
        "streaming {} kbps to {} receivers over loopback UDP for {secs} s ({runtime} runtime)...",
        config.stream.rate_bps / 1000,
        n - 1
    );
    if !faults.timeline.is_empty() {
        println!(
            "  adversity: {} fault events, population {} -> {} nodes",
            faults.timeline.len(),
            faults.base_n,
            faults.total_n
        );
    }
    let watch_stop = Arc::new(AtomicBool::new(false));
    let watcher = watch.then(|| {
        println!("  telemetry: scrape http://127.0.0.1:{WATCH_PORT}/metrics while this runs");
        let stop = Arc::clone(&watch_stop);
        std::thread::spawn(move || watch_loop(&stop))
    });
    let report = match runtime.as_str() {
        "threads" => UdpCluster::run(config).expect("cluster runs"),
        "reactor" => ReactorCluster::run(config).expect("cluster runs"),
        other => panic!("unknown runtime {other:?} (expected `threads` or `reactor`)"),
    };
    watch_stop.store(true, Ordering::Relaxed);
    if let Some(handle) = watcher {
        let _ = handle.join();
    }

    println!("\nresults:");
    println!("  windows measured per node: {}", report.windows_measured);
    println!(
        "  receivers decoding every window: {}/{}",
        report.nodes_all_windows_ok(),
        report.receivers()
    );
    println!(
        "  average complete windows: {:.1}%",
        report.quality.average_quality_percent(Duration::MAX)
    );
    if let Some(joiners) = &report.joiner_quality {
        println!(
            "  joiner catch-up (windows after each join): {:.1}% across {} joiners",
            joiners.average_quality_percent(Duration::MAX),
            joiners.nodes().len()
        );
    }
    println!("  windows byte-verified through real Reed-Solomon: {}", report.windows_verified);
    let sent: u64 = report.nodes.iter().map(|r| r.sent_msgs).sum();
    let recv: u64 = report.nodes.iter().map(|r| r.recv_msgs).sum();
    let errs: u64 = report.nodes.iter().map(|r| r.decode_errors).sum();
    println!("  datagrams sent {sent}, received {recv}, malformed {errs}");
    let res = report.resilience();
    println!(
        "  resilience: {} corrupted serves detected, {} re-requested from alternates, \
         {} garbage ids rejected",
        res.corrupted_events_detected, res.corrupt_rerequests, res.garbage_ids_rejected
    );
    println!(
        "  resilience: {} peers demoted, {} proposals from demoted peers ignored",
        res.peers_demoted, res.proposes_from_demoted_ignored
    );
    if let Some(total) = report.io_stats() {
        println!(
            "  kernel batching: {} ({} shards)",
            if gossip_reactor::mmsg_active() { "sendmmsg/recvmmsg" } else { "portable fallback" },
            report.shard_stats.len()
        );
        if let Some(ratio) = total.syscalls_per_datagram() {
            println!(
                "  send syscalls per datagram: {ratio:.3} ({} syscalls / {} datagrams)",
                total.send_syscalls, total.datagrams_sent
            );
        }
        if let Some(d) = total.datagrams_per_send_syscall() {
            println!("  datagrams per send syscall: {d:.1}");
        }
        if let Some(d) = total.datagrams_per_recv_syscall() {
            println!("  datagrams per recv syscall: {d:.1}");
        }
        if let Some(occ) = total.recv_batch_occupancy() {
            println!("  recv batch occupancy: {:.1}%", occ * 100.0);
        }
        if let Some(spi) = total.syscalls_per_iteration() {
            println!("  syscalls per loop iteration: {spi:.2}");
        }
        let rec = report.recovery();
        println!(
            "  recovery: {} faults injected, {} transients recovered, {} send backoffs",
            rec.faults_injected, rec.transients_recovered, rec.send_backoffs
        );
        println!(
            "  recovery: {} datagrams shed, {} socket re-binds, {} backend downgrades, \
             {} encode errors, {} aborted shards",
            rec.datagrams_shed,
            rec.socket_rebinds,
            rec.backend_downgrades,
            rec.encode_errors,
            rec.aborted_shards
        );
    }
}
