//! Live deployment on real UDP sockets: the same protocol core that runs in
//! the simulator, running as one thread-per-node loopback cluster with
//! real wire encoding, real upload shaping and real Reed–Solomon
//! verification of the received windows.
//!
//! ```text
//! cargo run --release --example live_udp [nodes] [seconds]
//! ```

use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::{ClusterConfig, UdpCluster};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let secs: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(6);
    assert!(n >= 2, "need a source and at least one receiver");

    let config = ClusterConfig {
        n,
        gossip: GossipConfig::new(5).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 300_000,
            packet_payload_bytes: 1000,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
    };

    println!(
        "streaming {} kbps to {} receivers over loopback UDP for {secs} s...",
        config.stream.rate_bps / 1000,
        n - 1
    );
    let report = UdpCluster::run(config).expect("cluster runs");

    println!("\nresults:");
    println!("  windows measured per node: {}", report.windows_measured);
    println!(
        "  receivers decoding every window: {}/{}",
        report.nodes_all_windows_ok(),
        report.receivers()
    );
    println!(
        "  average complete windows: {:.1}%",
        report.quality.average_quality_percent(Duration::MAX)
    );
    println!("  windows byte-verified through real Reed-Solomon: {}", report.windows_verified);
    let sent: u64 = report.nodes.iter().map(|r| r.sent_msgs).sum();
    let recv: u64 = report.nodes.iter().map(|r| r.recv_msgs).sum();
    let errs: u64 = report.nodes.iter().map(|r| r.decode_errors).sum();
    println!("  datagrams sent {sent}, received {recv}, malformed {errs}");
}
