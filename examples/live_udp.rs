//! Live deployment on real UDP sockets: the same protocol core that runs in
//! the simulator, hosted by either real-socket runtime —
//!
//! * `threads` — one thread + one blocking socket per node (hundreds of
//!   nodes);
//! * `reactor` — a few event-loop shards with shared sockets (thousands of
//!   nodes in one process).
//!
//! Both use real wire encoding, real upload shaping and real Reed–Solomon
//! verification of the received windows.
//!
//! ```text
//! cargo run --release --example live_udp [nodes] [seconds] [--runtime threads|reactor]
//! ```

use gossip_core::GossipConfig;
use gossip_fec::WindowParams;
use gossip_reactor::ReactorCluster;
use gossip_stream::StreamConfig;
use gossip_types::Duration;
use gossip_udp::cluster::{ClusterConfig, UdpCluster};

fn main() {
    let mut positional: Vec<u64> = Vec::new();
    let mut runtime = String::from("threads");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runtime" => {
                runtime = args.next().expect("--runtime requires `threads` or `reactor`");
            }
            other => positional.push(other.parse().unwrap_or_else(|_| {
                panic!("unexpected argument {other:?} (usage: live_udp [nodes] [seconds] [--runtime threads|reactor])")
            })),
        }
    }
    let n = positional.first().map_or(12, |&v| v as usize);
    let secs = positional.get(1).copied().unwrap_or(6);
    assert!(n >= 2, "need a source and at least one receiver");

    let config = ClusterConfig {
        n,
        gossip: GossipConfig::new(5).with_gossip_period(Duration::from_millis(100)),
        stream: StreamConfig {
            rate_bps: 300_000,
            packet_payload_bytes: 1000,
            window: WindowParams::new(20, 4),
        },
        upload_cap_bps: Some(2_000_000),
        source_uncapped: true,
        max_backlog: Duration::from_secs(5),
        stream_duration: Duration::from_secs(secs),
        drain_duration: Duration::from_secs(2),
        seed: 42,
        inject_loss: 0.0,
        crashes: Vec::new(),
    };

    println!(
        "streaming {} kbps to {} receivers over loopback UDP for {secs} s ({runtime} runtime)...",
        config.stream.rate_bps / 1000,
        n - 1
    );
    let report = match runtime.as_str() {
        "threads" => UdpCluster::run(config).expect("cluster runs"),
        "reactor" => ReactorCluster::run(config).expect("cluster runs"),
        other => panic!("unknown runtime {other:?} (expected `threads` or `reactor`)"),
    };

    println!("\nresults:");
    println!("  windows measured per node: {}", report.windows_measured);
    println!(
        "  receivers decoding every window: {}/{}",
        report.nodes_all_windows_ok(),
        report.receivers()
    );
    println!(
        "  average complete windows: {:.1}%",
        report.quality.average_quality_percent(Duration::MAX)
    );
    println!("  windows byte-verified through real Reed-Solomon: {}", report.windows_verified);
    let sent: u64 = report.nodes.iter().map(|r| r.sent_msgs).sum();
    let recv: u64 = report.nodes.iter().map(|r| r.recv_msgs).sum();
    let errs: u64 = report.nodes.iter().map(|r| r.decode_errors).sum();
    println!("  datagrams sent {sent}, received {recv}, malformed {errs}");
}
