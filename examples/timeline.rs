//! Watch a run unfold over time: per-second delivery rate, queue backlog
//! and drops, rendered as sparklines — including the dip-and-recovery
//! around a catastrophic churn event.
//!
//! ```text
//! cargo run --release --example timeline [churn_percent]
//! ```

use gossip_experiments::Scenario;
use gossip_net::ChurnPlan;
use gossip_sim::DetRng;
use gossip_types::{NodeId, Time};

fn main() {
    let pct: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);
    let scenario = Scenario::tiny(6).with_seed(11);
    let crash_at = Time::ZERO + scenario.stream_duration / 2;
    let mut rng = DetRng::seed_from(11);
    let churn = ChurnPlan::catastrophic(
        crash_at,
        scenario.n,
        f64::from(pct) / 100.0,
        &[NodeId::new(0)],
        &mut rng,
    );
    println!("{} nodes, {pct}% crash at {crash_at}; one sparkline bucket ≈ 1 s\n", scenario.n);
    let result = scenario.with_churn(churn).run();
    let t = &result.timeline;

    // Delivery rate (packets/s across all surviving receivers).
    let mut rate = gossip_metrics::TimeSeries::new("delivery_rate");
    for (at, v) in t.delivered.rates() {
        rate.push(at, v);
    }
    let width = 60;
    println!("delivery rate  {}", rate.sparkline(width));
    println!("queued bytes   {}", t.queued_bytes.sparkline(width));
    println!("drops (cum.)   {}", t.dropped.sparkline(width));

    let last = t.delivered.last().map_or(0.0, |(_, v)| v);
    println!("\ntotal packets delivered to receivers: {last}");
    println!(
        "average complete windows (offline): {:.1}%",
        result.quality.average_quality_percent(gossip_types::Duration::MAX)
    );
}
